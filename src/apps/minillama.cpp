#include "apps/minillama.hpp"

#include "buildsys/script.hpp"

namespace xaas::apps {

namespace {

const char* kHeader = R"(
#define LL_Q4_SCALE 0.0625
#if defined(LL_SIMD_AVX_512)
#define LL_SIMD_WIDTH 8
#elif defined(LL_SIMD_AVX2_256)
#define LL_SIMD_WIDTH 4
#elif defined(LL_SIMD_None)
#define LL_SIMD_WIDTH 1
#else
#define LL_SIMD_WIDTH 2
#endif
double mm_q4(double* w, double* act, double* out, int d);
double mm_gpu(double* w, double* act, double* out, int d);
double attention(double* out, double* scores, int d);
)";

const char* kMain = R"(
#include "include/ll.h"
double mm_forward(double* w, double* act, double* out, int d) {
#if defined(LL_GPU_CUDA) || defined(LL_GPU_HIP) || defined(LL_GPU_SYCL)
  return mm_gpu(w, act, out, d);
#else
  return mm_q4(w, act, out, d);
#endif
}

double app_main(double* w, double* act, double* out, double* scores,
                int d, int pp, int tg) {
  double checksum = 0.0;
  for (int t = 0; t < pp; t++) {
    checksum = checksum + mm_forward(w, act, out, d);
  }
  for (int t = 0; t < tg; t++) {
    checksum = checksum + mm_forward(w, act, out, d);
    checksum = checksum + attention(out, scores, d);
  }
  return checksum;
}
)";

// Q4 matmul: the reference path dequantizes with floor() and divisions
// (never vectorized); the tuned path is a clean fused dequant-FMA loop
// the deployment-time vectorizer widens, like ggml's per-ISA intrinsics.
const char* kMatmul = R"(
#include "include/ll.h"
#ifdef LL_SIMD_None
double mm_q4(double* w, double* act, double* out, int d) {
  double checksum = 0.0;
#pragma omp parallel for reduction(+:checksum)
  for (int r = 0; r < d; r++) {
    double acc = 0.0;
    int lo = r * d;
    for (int c = 0; c < d; c++) {
      double q = w[lo + c];
      double block = floor(q * 0.25);
      double dq = (q - block * 4.0) * LL_Q4_SCALE - 0.5;
      double scale = 1.0 / (1.0 + block * 0.0);
      acc += dq * scale * act[c];
    }
    out[r] = acc;
    checksum += acc;
  }
  return checksum;
}
#else
double mm_q4(double* w, double* act, double* out, int d) {
  double checksum = 0.0;
#pragma omp parallel for reduction(+:checksum)
  for (int r = 0; r < d; r++) {
    double acc = 0.0;
    int lo = r * d;
    for (int c = 0; c < d; c++) {
      double dq = w[lo + c] * LL_Q4_SCALE - 0.5;
      acc += dq * act[c];
    }
    out[r] = acc;
    checksum += acc;
  }
  return checksum;
}
#endif
)";

// Attention softmax: exp() has no vector form on our targets, so this
// stays scalar on every build — the Amdahl component of tg latency.
const char* kAttention = R"(
#include "include/ll.h"
double attention(double* out, double* scores, int d) {
  double m = out[0];
  for (int i = 0; i < d; i++) {
    m = fmax(m, out[i]);
  }
  double z = 0.0;
  for (int i = 0; i < d; i++) {
    double e = exp((out[i] - m) * 0.125);
    scores[i] = e;
    z += e;
  }
  for (int i = 0; i < d; i++) {
    scores[i] = scores[i] / z;
  }
  return z;
}
)";

std::string gpu_source(const std::string& backend, const char* extra) {
  return std::string("#include \"include/ll.h\"\n#pragma xaas gpu_kernel\n"
                     "double ll_mm_kernel_") +
         backend + R"((double* w, double* act, double* out, int d) {
  double checksum = 0.0;
  for (int r = 0; r < d; r++) {
    double acc = 0.0;
    int lo = r * d;
    for (int c = 0; c < d; c++) {
      double dq = w[lo + c] * LL_Q4_SCALE - 0.5;
      acc += dq * act[c];
)" + std::string(extra) + R"(    }
    out[r] = acc;
    checksum += acc;
  }
  return checksum;
}

double mm_gpu(double* w, double* act, double* out, int d) {
  return ll_mm_kernel_)" + backend + R"((w, act, out, d);
}
)";
}

const char* kScript = R"(
project(minillama)
build_system(cmake 3.14)
minimum_compiler(gcc 9.0)
minimum_compiler(clang 14.0)
minimum_compiler(icpx 2023.0)
architecture(x86_64)
architecture(aarch64)

option_multichoice(LL_SIMD "CPU SIMD level" AVX2_256 None SSE4.1 AVX2_256 AVX_512 ARM_NEON_ASIMD)
simd_option(LL_SIMD)
category(LL_SIMD simd)

option_multichoice(LL_GPU "GPU backend" OFF OFF CUDA HIP SYCL)
category(LL_GPU gpu)

option_bool(LL_OPENMP "OpenMP threading" ON)
category(LL_OPENMP parallel)

option_multichoice(LL_BLAS "BLAS for prompt processing" none none openblas mkl)
category(LL_BLAS blas)

# ggml-style performance toggles (over 20 in the real project, §6.2).
option_bool(LL_KQUANTS "k-quant formats" ON)
option_bool(LL_FLASH_ATTN "fused flash attention" OFF)
option_bool(LL_FMA "use FMA intrinsics" ON)
option_bool(LL_F16C "F16C conversions" ON)
option_bool(LL_AVX_VNNI "AVX-VNNI dot products" OFF)
option_bool(LL_LTO "link-time optimization" OFF)
option_bool(LL_NATIVE "-march=native tuning" OFF)
option_bool(LL_ACCELERATE "Apple Accelerate framework" OFF)
category(LL_KQUANTS optimization)
category(LL_FLASH_ATTN optimization)
category(LL_FMA optimization)
category(LL_F16C optimization)
category(LL_AVX_VNNI optimization)
category(LL_LTO optimization)
category(LL_NATIVE optimization)
category(LL_ACCELERATE optimization)

add_target(llama)
target_sources(llama src/main.c src/matmul_q4.c src/attention.c)
include_dir(llama .)

if(LL_OPENMP)
  add_flag(-fopenmp)
endif()
if(LL_KQUANTS)
  add_define(LL_KQUANTS)
endif()

if(LL_GPU STREQUAL CUDA)
  require_dependency(cuda 12.0)
  target_sources(llama src/gpu_cuda.c)
endif()
if(LL_GPU STREQUAL HIP)
  require_dependency(rocm 5.4)
  target_sources(llama src/gpu_hip.c)
endif()
if(LL_GPU STREQUAL SYCL)
  require_dependency(sycl 2023.0)
  target_sources(llama src/gpu_sycl.c)
endif()

if(LL_BLAS STREQUAL openblas)
  require_dependency(openblas 0.3)
  link_library(openblas)
endif()
if(LL_BLAS STREQUAL mkl)
  require_dependency(mkl 2021)
  link_library(mkl)
endif()
)";

}  // namespace

Application make_minillama() {
  Application app;
  app.name = "minillama";
  app.entry_point = "app_main";
  app.source_tree.write("include/ll.h", kHeader);
  app.source_tree.write("src/main.c", kMain);
  app.source_tree.write("src/matmul_q4.c", kMatmul);
  app.source_tree.write("src/attention.c", kAttention);
  app.source_tree.write("src/gpu_cuda.c", gpu_source("cuda", ""));
  app.source_tree.write("src/gpu_hip.c", gpu_source("hip", ""));
  app.source_tree.write(
      "src/gpu_sycl.c",
      gpu_source("sycl", "      acc = acc * 1.0 + 0.0 * dq;\n"));
  app.build_script_text = kScript;
  app.script = buildsys::parse_script(kScript).script;
  return app;
}

vm::Workload minillama_workload(const LlamaWorkloadParams& params) {
  vm::Workload w;
  w.entry = "app_main";
  const auto d = static_cast<std::size_t>(params.d_model);
  std::vector<double> weights(d * d);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    weights[i] = static_cast<double>((i * 2654435761ULL) % 16);  // Q4 codes
  }
  w.f64_buffers["w"] = std::move(weights);
  w.f64_buffers["act"] = std::vector<double>(d, 0.25);
  w.f64_buffers["out"] = std::vector<double>(d, 0.0);
  w.f64_buffers["scores"] = std::vector<double>(d, 0.0);
  using Arg = vm::Workload::Arg;
  w.args = {Arg::buf_f64("w"),   Arg::buf_f64("act"),
            Arg::buf_f64("out"), Arg::buf_f64("scores"),
            Arg::i64(params.d_model), Arg::i64(params.prompt_tokens),
            Arg::i64(params.gen_tokens)};
  return w;
}

}  // namespace xaas::apps
