// minillama: an LLM-inference mini-app standing in for llama.cpp
// (Table 1 last row, §6.3.2): quantized matrix multiplication and
// attention kernels, multiple GPU backends, SIMD levels down to reference
// kernels, and a pile of ggml-style optimization toggles that make its
// build script the harder specialization-discovery target of §6.2's
// generalization study.
#pragma once

#include "vm/executor.hpp"
#include "xaas/application.hpp"

namespace xaas::apps {

Application make_minillama();

/// The paper's llama.cpp benchmark: prompt processing of `pp` tokens and
/// generation of `tg` tokens on a model of hidden dimension `d`
/// (llama-bench pp512/tg128 proxy).
struct LlamaWorkloadParams {
  int d_model = 256;
  int prompt_tokens = 8;
  int gen_tokens = 4;
};

vm::Workload minillama_workload(const LlamaWorkloadParams& params);

}  // namespace xaas::apps
