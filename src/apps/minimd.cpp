#include "apps/minimd.hpp"

#include <algorithm>
#include <cstdio>
#include <string>

#include "buildsys/script.hpp"

namespace xaas::apps {

namespace {

// Shared header. MD_SIMD_WIDTH mirrors how GROMACS' GMX_SIMD choice
// reaches the preprocessor: a class of files is sensitive to the SIMD
// *width class* (1/2/4/8), which is exactly why the paper still needs
// some per-ISA IR files after flag normalization (§6.4).
const char* kHeader = R"(
#define MD_SOFTENING 0.01
#if defined(MD_SIMD_AVX_512)
#define MD_SIMD_WIDTH 8
#elif defined(MD_SIMD_AVX_256)
#define MD_SIMD_WIDTH 4
#elif defined(MD_SIMD_AVX2_256)
#define MD_SIMD_WIDTH 4
#elif defined(MD_SIMD_ARM_SVE)
#define MD_SIMD_WIDTH 4
#elif defined(MD_SIMD_None)
#define MD_SIMD_WIDTH 1
#else
#define MD_SIMD_WIDTH 2
#endif

void init_neighbors(int* nbidx, int n, int nnb);
void pack_neighbors(double* px, double* py, double* pz, double* nbx, double* nby, double* nbz, int* nbidx, int n, int nnb);
double forces_cpu(double* px, double* py, double* pz, double* fx, double* fy, double* fz, double* nbx, double* nby, double* nbz, int n, int nnb);
double forces_gpu(double* px, double* py, double* pz, double* fx, double* fy, double* fz, double* nbx, double* nby, double* nbz, int n, int nnb);
void integrate(double* px, double* py, double* pz, double* vx, double* vy, double* vz, double* fx, double* fy, double* fz, int n, double dt);
void spread_charges(double* grid, int g, double energy);
void fft_forward(double* grid, int g);
double md_dot(double* a, double* b, int n);
double bonded_forces(double* px, double* py, double* pz, double* fx, double* fy, double* fz, int* nbidx, int n, int nnb);
void pack_neighbors_dev(double* px, double* py, double* pz, double* nbx, double* nby, double* nbz, int* nbidx, int n, int nnb);
void md_exchange(double* px, double* py, double* pz, int n);
)";

const char* kMain = R"(
#include "include/md.h"
double app_main(double* px, double* py, double* pz,
                double* vx, double* vy, double* vz,
                double* fx, double* fy, double* fz,
                double* nbx, double* nby, double* nbz,
                int* nbidx, double* grid,
                int n, int steps, int nnb, int gridn) {
  init_neighbors(nbidx, n, nnb);
  double energy = 0.0;
  double dt = 0.002;
  for (int s = 0; s < steps; s++) {
#if defined(MD_GPU_CUDA) || defined(MD_GPU_HIP) || defined(MD_GPU_SYCL) || defined(MD_GPU_OPENCL)
    if (s % 10 == 0) {
      pack_neighbors_dev(px, py, pz, nbx, nby, nbz, nbidx, n, nnb);
    }
    energy = forces_gpu(px, py, pz, fx, fy, fz, nbx, nby, nbz, n, nnb);
#else
    if (s % 10 == 0) {
      pack_neighbors(px, py, pz, nbx, nby, nbz, nbidx, n, nnb);
    }
    energy = forces_cpu(px, py, pz, fx, fy, fz, nbx, nby, nbz, n, nnb);
    energy = energy + bonded_forces(px, py, pz, fx, fy, fz, nbidx, n, nnb);
#endif
    spread_charges(grid, gridn, energy);
    fft_forward(grid, gridn);
    integrate(px, py, pz, vx, vy, vz, fx, fy, fz, n, dt);
    double temp = md_dot(vx, vy, n);
#ifdef MD_MPI
    md_exchange(px, py, pz, n);
#endif
    energy = energy + temp * 0.0000001;
  }
  return energy;
}
)";

// Non-bonded Lennard-Jones kernel. The MD_SIMD=None build selects the
// reference C kernel (extra square roots and divisions, never
// vectorized); every other level selects the tuned kernel whose inner
// loop the deployment-time vectorizer widens to the target's lanes.
const char* kForces = R"(
#include "include/md.h"
#ifdef MD_SIMD_None
double forces_cpu(double* px, double* py, double* pz,
                  double* fx, double* fy, double* fz,
                  double* nbx, double* nby, double* nbz, int n, int nnb) {
  double energy = 0.0;
#pragma omp parallel for reduction(+:energy)
  for (int i = 0; i < n; i++) {
    double xi = px[i];
    double yi = py[i];
    double zi = pz[i];
    double fxi = 0.0;
    double fyi = 0.0;
    double fzi = 0.0;
    double ei = 0.0;
    int lo = i * nnb;
    int hi = lo + nnb;
    for (int j = lo; j < hi; j++) {
      double dx = xi - nbx[j];
      double dy = yi - nby[j];
      double dz = zi - nbz[j];
      double r2 = dx * dx + dy * dy + dz * dz + MD_SOFTENING;
      double r = sqrt(r2);
      double rinv = 1.0 / r;
      double rinv2 = rinv * rinv;
      double rinv6 = rinv2 * rinv2 * rinv2;
      double sig6 = 1.0 / (1.0 + r2 * 0.0);
      double coef = 24.0 * rinv6 * (2.0 * rinv6 - sig6) * rinv2;
      fxi += coef * dx;
      fyi += coef * dy;
      fzi += coef * dz;
      ei += 4.0 * rinv6 * (rinv6 - sig6);
    }
    fx[i] = fxi;
    fy[i] = fyi;
    fz[i] = fzi;
    energy += ei;
  }
  return energy;
}
#else
double forces_cpu(double* px, double* py, double* pz,
                  double* fx, double* fy, double* fz,
                  double* nbx, double* nby, double* nbz, int n, int nnb) {
  double energy = 0.0;
#pragma omp parallel for reduction(+:energy)
  for (int i = 0; i < n; i++) {
    double xi = px[i];
    double yi = py[i];
    double zi = pz[i];
    double fxi = 0.0;
    double fyi = 0.0;
    double fzi = 0.0;
    double ei = 0.0;
    int lo = i * nnb;
    int hi = lo + nnb;
    for (int j = lo; j < hi; j++) {
      double dx = xi - nbx[j];
      double dy = yi - nby[j];
      double dz = zi - nbz[j];
      double r2 = dx * dx + dy * dy + dz * dz + MD_SOFTENING;
      double inv = rsqrt(r2);
      double inv2 = inv * inv;
      double inv6 = inv2 * inv2 * inv2;
      double coef = 24.0 * inv6 * (2.0 * inv6 - 1.0) * inv2;
      fxi += coef * dx;
      fyi += coef * dy;
      fzi += coef * dz;
      ei += 4.0 * inv6 * (inv6 - 1.0);
    }
    fx[i] = fxi;
    fy[i] = fyi;
    fz[i] = fzi;
    energy += ei;
  }
  return energy;
}
#endif
)";

// Bonded interactions: gather-addressed (bond partners are scattered in
// memory), so the loop never vectorizes — the Amdahl fraction that keeps
// real MD speedups below the lane count (Fig. 2's 1.6x SSE2->AVX-512
// rather than 4x). GPU builds fuse bonded work into the non-bonded
// device kernel and overlap it, so the CPU path only runs in CPU builds.
const char* kBonded = R"(
#include "include/md.h"
double bonded_forces(double* px, double* py, double* pz,
                     double* fx, double* fy, double* fz,
                     int* nbidx, int n, int nnb) {
  double energy = 0.0;
#pragma omp parallel for reduction(+:energy)
  for (int i = 0; i < n; i++) {
    double xi = px[i];
    double yi = py[i];
    double zi = pz[i];
    int lo = i * nnb;
    for (int b = 0; b < 4; b++) {
      int k = nbidx[lo + b];
      double dx = xi - px[k];
      double dy = yi - py[k];
      double dz = zi - pz[k];
      double r2 = dx * dx + dy * dy + dz * dz + MD_SOFTENING;
      double r = sqrt(r2);
      double stretch = r - 1.0;
      double coef = stretch / r;
      fx[i] = fx[i] - coef * dx;
      fy[i] = fy[i] - coef * dy;
      fz[i] = fz[i] - coef * dz;
      energy += 0.5 * stretch * stretch;
    }
  }
  return energy;
}
)";

// Neighbor management: the packing gather is inherently scalar (indexed
// loads), mirroring the non-vectorizable parts of real MD codes.
const char* kNeighbor = R"(
#include "include/md.h"
void init_neighbors(int* nbidx, int n, int nnb) {
#pragma omp parallel for
  for (int i = 0; i < n; i++) {
    int lo = i * nnb;
    for (int j = 0; j < nnb; j++) {
      int k = i + j + 1;
      if (k >= n) {
        k = k - n;
      }
      nbidx[lo + j] = k;
    }
  }
}

void pack_neighbors(double* px, double* py, double* pz,
                    double* nbx, double* nby, double* nbz,
                    int* nbidx, int n, int nnb) {
#pragma omp parallel for
  for (int i = 0; i < n; i++) {
    int lo = i * nnb;
    int hi = lo + nnb;
    for (int j = lo; j < hi; j++) {
      int k = nbidx[j];
      nbx[j] = px[k];
      nby[j] = py[k];
      nbz[j] = pz[k];
    }
  }
}
)";

const char* kIntegrate = R"(
#include "include/md.h"
void integrate(double* px, double* py, double* pz,
               double* vx, double* vy, double* vz,
               double* fx, double* fy, double* fz, int n, double dt) {
#pragma omp parallel for
  for (int i = 0; i < n; i++) {
    vx[i] = vx[i] + dt * fx[i];
    vy[i] = vy[i] + dt * fy[i];
    vz[i] = vz[i] + dt * fz[i];
  }
#pragma omp parallel for
  for (int i = 0; i < n; i++) {
    px[i] = px[i] + dt * vx[i];
    py[i] = py[i] + dt * vy[i];
    pz[i] = pz[i] + dt * vz[i];
  }
}
)";

const char* kPme = R"(
#include "include/md.h"
void spread_charges(double* grid, int g, double energy) {
#pragma omp parallel for
  for (int k = 0; k < g; k++) {
    grid[k] = grid[k] * 0.5 + energy * 0.000001;
  }
}
)";

// FFT backends with library-realistic cost profiles: the bundled
// fftpack fallback does three passes with square roots, FFTW two tuned
// passes, MKL a single fused pass (cf. Fig. 3's point that the library
// choice is fixed at build time).
const char* kFftFftpack = R"(
#include "include/md.h"
void fft_forward(double* grid, int g) {
  for (int p = 0; p < 3; p++) {
    for (int k = 0; k < g; k++) {
      grid[k] = grid[k] * 0.92 + sqrt(fabs(grid[k]) + 1.0) * 0.01;
    }
  }
}
)";

const char* kFftFftw3 = R"(
#include "include/md.h"
void fft_forward(double* grid, int g) {
  for (int p = 0; p < 2; p++) {
#pragma omp parallel for
    for (int k = 0; k < g; k++) {
      grid[k] = grid[k] * 0.92 + 0.013;
    }
  }
}
)";

const char* kFftMkl = R"(
#include "include/md.h"
void fft_forward(double* grid, int g) {
#pragma omp parallel for
  for (int k = 0; k < g; k++) {
    grid[k] = grid[k] * 0.8464 + 0.025;
  }
}
)";

// BLAS backends for the per-step kinetic-energy dot product.
const char* kBlasInternal = R"(
#include "include/md.h"
double md_dot(double* a, double* b, int n) {
  double acc = 0.0;
  for (int i = 0; i < n; i++) {
    double prod = a[i] * b[i];
    double scaled = prod / 1.0;
    acc += scaled;
  }
  return acc;
}
)";

const char* kBlasOpenblas = R"(
#include "include/md.h"
double md_dot(double* a, double* b, int n) {
  double acc = 0.0;
  for (int i = 0; i < n; i++) {
    acc += a[i] * b[i];
  }
  return acc;
}
)";

const char* kBlasMkl = R"(
#include "include/md.h"
double md_dot(double* a, double* b, int n) {
  double acc = 0.0;
  for (int i = 0; i < n; i++) {
    acc += a[i] * b[i];
  }
  return acc;
}
)";

// GPU backends: each defines the same forces_gpu symbol; exactly one is
// compiled per configuration. The SYCL and OpenCL portability layers pay
// a small per-element overhead relative to native CUDA/HIP (§6.3.1's
// SYCL container is 11-20% slower).
std::string gpu_backend_source(const std::string& backend, double overhead) {
  std::string extra;
  if (overhead > 0.0) {
    extra = "      ei += 0.0 * (dx + dy + dz) * " + std::to_string(overhead) +
            ";\n      fxi = fxi * 1.0;\n";
  }
  return std::string(R"(
#include "include/md.h"
#pragma xaas gpu_kernel
double md_force_kernel_)") + backend + R"((double* px, double* py, double* pz,
                  double* fx, double* fy, double* fz,
                  double* nbx, double* nby, double* nbz, int n, int nnb) {
  double energy = 0.0;
  for (int i = 0; i < n; i++) {
    double xi = px[i];
    double yi = py[i];
    double zi = pz[i];
    double fxi = 0.0;
    double fyi = 0.0;
    double fzi = 0.0;
    double ei = 0.0;
    int lo = i * nnb;
    int hi = lo + nnb;
    for (int j = lo; j < hi; j++) {
      double dx = xi - nbx[j];
      double dy = yi - nby[j];
      double dz = zi - nbz[j];
      double r2 = dx * dx + dy * dy + dz * dz + MD_SOFTENING;
      double inv = rsqrt(r2);
      double inv2 = inv * inv;
      double inv6 = inv2 * inv2 * inv2;
      double coef = 24.0 * inv6 * (2.0 * inv6 - 1.0) * inv2;
)" + extra + R"(      fxi += coef * dx;
      fyi += coef * dy;
      fzi += coef * dz;
      ei += 4.0 * inv6 * (inv6 - 1.0);
    }
    fx[i] = fxi;
    fy[i] = fyi;
    fz[i] = fzi;
    energy += ei;
  }
  return energy;
}

double forces_gpu(double* px, double* py, double* pz,
                  double* fx, double* fy, double* fz,
                  double* nbx, double* nby, double* nbz, int n, int nnb) {
  return md_force_kernel_)" + backend + R"((px, py, pz, fx, fy, fz, nbx, nby, nbz, n, nnb);
}

#pragma xaas gpu_kernel
void md_pack_kernel_)" + backend + R"((double* px, double* py, double* pz,
                    double* nbx, double* nby, double* nbz,
                    int* nbidx, int n, int nnb) {
  for (int i = 0; i < n; i++) {
    int lo = i * nnb;
    int hi = lo + nnb;
    for (int j = lo; j < hi; j++) {
      int k = nbidx[j];
      nbx[j] = px[k];
      nby[j] = py[k];
      nbz[j] = pz[k];
    }
  }
}

void pack_neighbors_dev(double* px, double* py, double* pz,
                        double* nbx, double* nby, double* nbz,
                        int* nbidx, int n, int nnb) {
  md_pack_kernel_)" + backend + R"((px, py, pz, nbx, nby, nbz, nbidx, n, nnb);
}
)";
}

// MPI halo exchange: ABI-dependent, hence system-dependent for the IR
// pipeline (Definition 2).
const char* kMpiComm = R"(
#include "include/md.h"
#ifdef MD_MPI
void md_exchange(double* px, double* py, double* pz, int n) {
  int halo = 4;
  for (int h = 0; h < halo; h++) {
    if (n > 2 * halo) {
      px[h] = px[n - 2 * halo + h];
      py[h] = py[n - 2 * halo + h];
      pz[h] = pz[n - 2 * halo + h];
    }
  }
}
#endif
)";

// ---- Generated utility modules ------------------------------------------

enum class ModuleClass { SimdSensitive, GpuConditional, Omp, MpiConditional, Plain };

ModuleClass module_class(int i) {
  const int r = (i * 37) % 1000;  // deterministic spread
  if (r < 274) return ModuleClass::SimdSensitive;
  if (r < 524) return ModuleClass::GpuConditional;
  if (r < 814) return ModuleClass::Omp;
  if (r < 864) return ModuleClass::MpiConditional;
  return ModuleClass::Plain;
}

std::string module_source(int i) {
  const std::string fn = "md_util_" + std::to_string(i);
  const std::string c1 = std::to_string(1.0 + 0.001 * i);
  const std::string c2 = std::to_string(2.0 + 0.002 * i);
  switch (module_class(i)) {
    case ModuleClass::SimdSensitive:
      // Width-class-dependent algorithm selection: produces up to three
      // distinct preprocessed variants across the vectorization ladder.
      return "#include \"include/md.h\"\n"
             "double " + fn + "(double* a, int n) {\n"
             "  double acc = 0.0;\n"
             "#if MD_SIMD_WIDTH >= 8\n"
             "  for (int k = 0; k < n; k++) { acc += a[k] * " + c1 + "; }\n"
             "#elif MD_SIMD_WIDTH >= 4\n"
             "  for (int k = 0; k < n; k++) { acc += a[k] * " + c2 + "; }\n"
             "#else\n"
             "  for (int k = 0; k < n; k++) { acc += a[k] + " + c1 + "; }\n"
             "#endif\n"
             "  return acc;\n"
             "}\n";
    case ModuleClass::GpuConditional:
      return "#include \"include/md.h\"\n"
             "double " + fn + "(double* a, int n) {\n"
             "  double acc = " + c1 + ";\n"
             "#ifdef MD_GPU_CUDA\n"
             "  acc = acc * 2.0;\n"
             "#endif\n"
             "  for (int k = 0; k < n; k++) { acc += a[k]; }\n"
             "  return acc;\n"
             "}\n";
    case ModuleClass::Omp:
      return "#include \"include/md.h\"\n"
             "double " + fn + "(double* a, int n) {\n"
             "  double acc = 0.0;\n"
             "#pragma omp parallel for reduction(+:acc)\n"
             "  for (int k = 0; k < n; k++) { acc += a[k] * " + c2 + "; }\n"
             "  return acc;\n"
             "}\n";
    case ModuleClass::MpiConditional:
      return "#include \"include/md.h\"\n"
             "double " + fn + "(double* a, int n) {\n"
             "#ifdef MD_MPI\n"
             "  double acc = " + c2 + ";\n"
             "#else\n"
             "  double acc = " + c1 + ";\n"
             "#endif\n"
             "  for (int k = 0; k < n; k++) { acc += a[k]; }\n"
             "  return acc;\n"
             "}\n";
    case ModuleClass::Plain:
      return "#include \"include/md.h\"\n"
             "double " + fn + "(double* a, int n) {\n"
             "  double acc = " + c1 + ";\n"
             "  for (int k = 0; k < n; k++) { acc += a[k] * " + c2 + "; }\n"
             "  return acc;\n"
             "}\n";
  }
  return "";
}

std::string gpu_module_source(int i) {
  const std::string fn = "md_gpu_util_" + std::to_string(i);
  return "#include \"include/md.h\"\n"
         "#pragma xaas gpu_kernel\n"
         "double " + fn + "(double* a, int n) {\n"
         "  double acc = " + std::to_string(0.5 + 0.01 * i) + ";\n"
         "  for (int k = 0; k < n; k++) { acc += a[k]; }\n"
         "  return acc;\n"
         "}\n";
}

std::string mpi_aux_source(int i) {
  const std::string fn = "md_mpi_aux_" + std::to_string(i);
  return "#include \"include/md.h\"\n"
         "double " + fn + "(double* a, int n) {\n"
         "  double acc = " + std::to_string(3.0 + i) + ";\n"
         "  for (int k = 0; k < n; k++) { acc += a[k]; }\n"
         "  return acc;\n"
         "}\n";
}

std::string tools_source(int i) {
  const std::string fn = "md_tool_" + std::to_string(i);
  return "double " + fn + "(double* a, int n) {\n"
         "  double acc = " + std::to_string(7.0 + i) + ";\n"
         "  for (int k = 0; k < n; k++) { acc += a[k]; }\n"
         "  return acc;\n"
         "}\n";
}

std::string build_script(int gpu_module_count) {
  std::string gpu_sources_cuda = "target_sources(md src/gpu_cuda.c";
  for (int i = 0; i < gpu_module_count; ++i) {
    gpu_sources_cuda += " modules_gpu/gpu_k_" + std::to_string(i) + ".c";
  }
  gpu_sources_cuda += ")";

  return std::string(R"(
project(minimd)
build_system(cmake 3.18)
minimum_compiler(gcc 9.0)
minimum_compiler(clang 14.0)
minimum_compiler(oneapi 2023.0)
architecture(x86_64)
architecture(aarch64)

option_multichoice(MD_SIMD "SIMD acceleration level" SSE2 None SSE2 SSE4.1 AVX2_128 AVX_256 AVX2_256 AVX_512 ARM_NEON_ASIMD ARM_SVE)
simd_option(MD_SIMD)
category(MD_SIMD simd)

option_multichoice(MD_GPU "GPU acceleration backend" OFF OFF CUDA HIP SYCL OPENCL)
category(MD_GPU gpu)

option_bool(MD_OPENMP "OpenMP threading" ON)
option_bool(MD_MPI "MPI domain decomposition" OFF)
category(MD_OPENMP parallel)
category(MD_MPI parallel)

option_multichoice(MD_FFT "FFT library" fftw3 fftpack fftw3 mkl)
category(MD_FFT fft)

option_multichoice(MD_BLAS "Linear algebra library" internal internal openblas mkl)
category(MD_BLAS blas)

add_target(md)
target_sources(md src/main.c src/forces.c src/bonded.c src/neighbor.c src/integrate.c src/pme.c)
target_sources_glob(md modules/m_*.c)
include_dir(md .)
include_build_dir(md)

add_target(md_tools)
target_sources(md_tools tools/t_0.c tools/t_1.c tools/t_2.c)
include_dir(md_tools .)

if(MD_OPENMP)
  add_flag(-fopenmp)
endif()

if(MD_MPI)
  add_define(MD_MPI)
  require_dependency(mpich 4.0)
  target_sources(md src/mpi_comm.c modules_mpi/mpi_aux_0.c modules_mpi/mpi_aux_1.c modules_mpi/mpi_aux_2.c)
endif()

if(MD_GPU STREQUAL CUDA)
  require_dependency(cuda 12.1)
  )" + gpu_sources_cuda + R"(
endif()
if(MD_GPU STREQUAL HIP)
  require_dependency(rocm 5.4)
  target_sources(md src/gpu_hip.c)
endif()
if(MD_GPU STREQUAL SYCL)
  require_dependency(sycl 2023.0)
  target_sources(md src/gpu_sycl.c)
endif()
if(MD_GPU STREQUAL OPENCL)
  require_dependency(opencl 3.0)
  target_sources(md src/gpu_opencl.c)
endif()

if(MD_FFT STREQUAL fftpack)
  internal_library(fftpack -DMD_BUILD_OWN_FFT)
  target_sources(md lib/fft_fftpack.c)
endif()
if(MD_FFT STREQUAL fftw3)
  require_dependency(fftw3 3.3)
  link_library(fftw3)
  target_sources(md lib/fft_fftw3.c)
endif()
if(MD_FFT STREQUAL mkl)
  require_dependency(mkl 2021)
  link_library(mkl)
  target_sources(md lib/fft_mkl.c)
endif()

if(MD_BLAS STREQUAL internal)
  internal_library(miniblas -DMD_BUILD_OWN_BLAS)
  target_sources(md lib/blas_internal.c)
endif()
if(MD_BLAS STREQUAL openblas)
  require_dependency(openblas 0.3)
  link_library(openblas)
  target_sources(md lib/blas_openblas.c)
endif()
if(MD_BLAS STREQUAL mkl)
  require_dependency(mkl 2021)
  link_library(mkl)
  target_sources(md lib/blas_mkl.c)
endif()
)");
}

}  // namespace

Application make_minimd(const MinimdOptions& options) {
  Application app;
  app.name = "minimd";
  app.entry_point = "app_main";
  app.system_dependent_globs = {"src/mpi_comm.c"};

  app.source_tree.write("include/md.h", kHeader);
  app.source_tree.write("src/main.c", kMain);
  app.source_tree.write("src/forces.c", kForces);
  app.source_tree.write("src/bonded.c", kBonded);
  app.source_tree.write("src/neighbor.c", kNeighbor);
  app.source_tree.write("src/integrate.c", kIntegrate);
  app.source_tree.write("src/pme.c", kPme);
  app.source_tree.write("src/mpi_comm.c", kMpiComm);
  app.source_tree.write("src/gpu_cuda.c", gpu_backend_source("cuda", 0.0));
  app.source_tree.write("src/gpu_hip.c", gpu_backend_source("hip", 0.0));
  app.source_tree.write("src/gpu_sycl.c", gpu_backend_source("sycl", 0.15));
  app.source_tree.write("src/gpu_opencl.c", gpu_backend_source("opencl", 0.2));
  app.source_tree.write("lib/fft_fftpack.c", kFftFftpack);
  app.source_tree.write("lib/fft_fftw3.c", kFftFftw3);
  app.source_tree.write("lib/fft_mkl.c", kFftMkl);
  app.source_tree.write("lib/blas_internal.c", kBlasInternal);
  app.source_tree.write("lib/blas_openblas.c", kBlasOpenblas);
  app.source_tree.write("lib/blas_mkl.c", kBlasMkl);

  for (int i = 0; i < options.module_count; ++i) {
    // Zero-pad so VFS glob order is stable.
    char name[64];
    std::snprintf(name, sizeof(name), "modules/m_%05d.c", i);
    app.source_tree.write(name, module_source(i));
  }
  for (int i = 0; i < options.gpu_module_count; ++i) {
    app.source_tree.write("modules_gpu/gpu_k_" + std::to_string(i) + ".c",
                          gpu_module_source(i));
  }
  for (int i = 0; i < 3; ++i) {
    app.source_tree.write("modules_mpi/mpi_aux_" + std::to_string(i) + ".c",
                          mpi_aux_source(i));
    app.source_tree.write("tools/t_" + std::to_string(i) + ".c",
                          tools_source(i));
  }

  app.build_script_text = build_script(options.gpu_module_count);
  const auto parsed = buildsys::parse_script(app.build_script_text);
  app.script = parsed.script;
  return app;
}

vm::Workload minimd_workload(const MdWorkloadParams& params) {
  vm::Workload w;
  w.entry = "app_main";
  const auto n = static_cast<std::size_t>(params.atoms);
  const auto packed = n * static_cast<std::size_t>(params.neighbors);
  const auto g = static_cast<std::size_t>(params.grid);

  const auto coords = [&](std::uint64_t seed) {
    std::vector<double> v(n);
    for (std::size_t i = 0; i < n; ++i) {
      v[i] = 0.8 * static_cast<double>((i * 2654435761ULL + seed) % 1000) / 1000.0 +
             0.6 * static_cast<double>(i % 17);
    }
    return v;
  };
  w.f64_buffers["px"] = coords(1);
  w.f64_buffers["py"] = coords(2);
  w.f64_buffers["pz"] = coords(3);
  w.f64_buffers["vx"] = std::vector<double>(n, 0.01);
  w.f64_buffers["vy"] = std::vector<double>(n, -0.01);
  w.f64_buffers["vz"] = std::vector<double>(n, 0.005);
  w.f64_buffers["fx"] = std::vector<double>(n, 0.0);
  w.f64_buffers["fy"] = std::vector<double>(n, 0.0);
  w.f64_buffers["fz"] = std::vector<double>(n, 0.0);
  w.f64_buffers["nbx"] = std::vector<double>(packed, 0.0);
  w.f64_buffers["nby"] = std::vector<double>(packed, 0.0);
  w.f64_buffers["nbz"] = std::vector<double>(packed, 0.0);
  w.i64_buffers["nbidx"] = std::vector<long long>(packed, 0);
  w.f64_buffers["grid"] = std::vector<double>(g, 1.0);

  using Arg = vm::Workload::Arg;
  w.args = {Arg::buf_f64("px"),    Arg::buf_f64("py"), Arg::buf_f64("pz"),
            Arg::buf_f64("vx"),    Arg::buf_f64("vy"), Arg::buf_f64("vz"),
            Arg::buf_f64("fx"),    Arg::buf_f64("fy"), Arg::buf_f64("fz"),
            Arg::buf_f64("nbx"),   Arg::buf_f64("nby"), Arg::buf_f64("nbz"),
            Arg::buf_i64("nbidx"), Arg::buf_f64("grid"),
            Arg::i64(params.atoms), Arg::i64(params.steps),
            Arg::i64(params.neighbors), Arg::i64(params.grid)};
  return w;
}

MdWorkloadParams minimd_test_a(int scale) {
  MdWorkloadParams p;
  p.atoms = 20000 / scale;
  p.neighbors = 32;
  p.steps = 100 / std::max(1, scale / 10);
  p.grid = 4096 / scale * 4;
  return p;
}

MdWorkloadParams minimd_test_b(int scale) {
  MdWorkloadParams p;
  p.atoms = 30000 / scale;
  p.neighbors = 40;
  p.steps = 100 / std::max(1, scale / 10);
  p.grid = 8192 / scale * 4;
  return p;
}

}  // namespace xaas::apps
