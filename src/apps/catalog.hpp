// Table 1: specialization points of representative HPC applications and
// benchmarks — the survey data motivating XaaS's design (§2.1).
#pragma once

#include <string>
#include <vector>

namespace xaas::apps {

struct HpcApplication {
  std::string domain;
  std::string name;
  std::string architecture_specialization;
  std::string gpu_acceleration;
  std::string parallelism;
  std::string vectorization;
  std::string performance_libraries;
};

/// The nine applications surveyed in Table 1.
const std::vector<HpcApplication>& hpc_application_catalog();

}  // namespace xaas::apps
