// Helpers shared by the benchmark harness: extrapolate simulated
// measurements from scaled-down workloads to the paper's full workload
// sizes, and attach the I/O-time component GROMACS reports separately
// (Figs. 2/10/12 exclude or stack I/O explicitly).
#pragma once

#include "vm/executor.hpp"

namespace xaas::apps {

struct TimingBreakdown {
  double compute_seconds = 0.0;
  double io_seconds = 0.0;
  double total() const { return compute_seconds + io_seconds; }
};

/// Scale a simulated run to the paper's workload size. `scale` is the
/// ratio full/simulated in total work (atoms*steps or tokens).
TimingBreakdown extrapolate(const vm::RunResult& result, double scale,
                            double io_seconds = 0.0);

/// Mean and standard deviation over repeated timings.
struct Stats {
  double mean = 0.0;
  double dev = 0.0;
};
Stats timing_stats(const std::vector<double>& seconds);

}  // namespace xaas::apps
