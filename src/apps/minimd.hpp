// minimd: a molecular-dynamics mini-app standing in for GROMACS 2025.0.
//
// Specialization points mirror GROMACS (Table 1 row 1):
//   MD_SIMD  — nine vectorization levels (None .. AVX_512, NEON, SVE);
//              `None` selects the reference C kernels (slow but portable,
//              cf. Fig. 2), anything else the tuned vectorizable kernels
//              whose width is fixed only at lowering time;
//   MD_GPU   — OFF / CUDA / HIP / SYCL / OPENCL, mutually exclusive
//              backends compiled in via conditional sources;
//   MD_MPI   — halo exchange sources (MPI-ABI system-dependent);
//   MD_OPENMP— -fopenmp on every TU;
//   MD_FFT   — fftpack (internal) / fftw3 / mkl with different op counts;
//   MD_BLAS  — internal / openblas / mkl.
//
// The source tree scales: `module_count` generated utility files model
// GROMACS' ~1700 translation units per configuration. Generated modules
// fall into deterministic classes (SIMD-width-sensitive, GPU-conditional,
// OpenMP-parallel, MPI-conditional, plain) with the proportions that
// reproduce the paper's §6.4 dedup statistics (8710 TUs -> 2695 IRs, 69%
// reduction; ~14.3% preprocessing-distinct; ~95%+ tuning-only).
#pragma once

#include "vm/executor.hpp"
#include "xaas/application.hpp"

namespace xaas::apps {

struct MinimdOptions {
  /// Number of generated utility modules (besides the 6 core files).
  /// The §6.4 benchmark uses 1736 to match the paper's TU counts;
  /// tests use small values.
  int module_count = 40;
  /// GPU kernel modules compiled only when a backend is selected.
  int gpu_module_count = 41;
};

Application make_minimd(const MinimdOptions& options = {});

/// UEABS-like test cases (§6.3.1): A = 20k-atom ion channel proxy,
/// B = larger lignocellulose proxy. `scale` divides atom count and steps
/// so the simulation stays fast; benches extrapolate back.
struct MdWorkloadParams {
  int atoms = 512;
  int neighbors = 32;
  int steps = 10;
  int grid = 256;
};

vm::Workload minimd_workload(const MdWorkloadParams& params);

/// Parameters for UEABS tests A and B at a given scale divisor.
MdWorkloadParams minimd_test_a(int scale = 40);
MdWorkloadParams minimd_test_b(int scale = 40);

}  // namespace xaas::apps
