#include "apps/catalog.hpp"

namespace xaas::apps {

const std::vector<HpcApplication>& hpc_application_catalog() {
  static const std::vector<HpcApplication> catalog = {
      {"Molecular Dynamics", "GROMACS", "Architecture-specific FFT",
       "OpenCL, CUDA, SYCL, HIP", "OpenMP, MPI", "Automatic, many ISAs",
       "BLAS/LAPACK, FFT (many)"},
      {"Hydrodynamics", "LULESH", "-", "-", "OpenMP, MPI", "-", "-"},
      {"Electronic Structure", "Quantum Espresso", "Compiler adaptations",
       "CUDA, OpenACC", "OpenMP, MPI", "-",
       "BLAS/LAPACK, ELPA, ScaLAPACK, FFT (many)"},
      {"Lattice QCD", "MILC", "Compiler adaptations", "CUDA, HIP, SYCL",
       "OpenMP, MPI", "Compiler flags, many ISAs (Intel, AMD, PowerPC)",
       "LAPACK, PRIMME, FFTW, QUDA"},
      {"Lattice QCD", "OpenQCD", "Optimized for x86 CPUs", "-", "OpenMP, MPI",
       "Assembly (SSE, AVX, FMA3)", "-"},
      {"Particle-in-Cell", "VPIC / VPIC 2.0", "Kokkos portability", "CUDA",
       "OpenMP, MPI", "OpenMP and V4 library (many ISAs)", "-"},
      {"Cloud Physics", "CloudSC", "System-specific toolchains",
       "CUDA, SYCL, HIP, OpenACC", "OpenMP, MPI", "-", "Atlas"},
      {"Weather & Climate", "ICON", "System-specific toolchains",
       "CUDA, HIP, OpenACC", "OpenMP, MPI", "System-specific compiler flags",
       "BLAS/LAPACK"},
      {"LLM Inference", "llama.cpp", "Optimization flags",
       "Eight, including CUDA, HIP, SYCL", "OpenMP, pthreads",
       "Intrinsics (AVX, AVX2, AVX512, AMX, NEON, ...)",
       "BLAS (OpenBLAS, MKL, BLIS)"},
  };
  return catalog;
}

}  // namespace xaas::apps
