// Configurator: evaluate a build script under a concrete option
// assignment and environment, producing resolved targets and the
// compile-command database the IR pipeline consumes (§4.3
// "Configuration": "we obtain the list of all compilation steps and
// associated compilation flags ... without analyzing the internal
// structure of each build system").
#pragma once

#include <map>
#include <string>
#include <vector>

#include "buildsys/script.hpp"
#include "common/json.hpp"
#include "common/vfs.hpp"

namespace xaas::buildsys {

/// The environment a configuration runs in: where the build directory
/// lives, which dependencies are installed, which compiler is used.
struct Environment {
  /// Build directory path. Distinct per configuration for host builds;
  /// the XaaS pipeline containerizes builds so this is always the same
  /// path, removing spurious flag differences (§4.3).
  std::string build_dir = "/build";
  /// name -> version of available dependencies (e.g. {"cuda","12.1"}).
  std::map<std::string, std::string> dependencies;
  std::string compiler = "clang";
  std::string compiler_version = "19.0";
};

/// One entry of the compile-commands database.
struct CompileCommand {
  std::string target;
  std::string source;            // path within the application Vfs
  std::vector<std::string> args; // canonical flag list (-D/-I/-O/-m/...)

  std::string args_string() const;
};

struct ResolvedTarget {
  std::string name;
  std::vector<std::string> sources;
  std::vector<std::string> source_globs;  // expanded against the source tree
  std::vector<std::string> defines;
  std::vector<std::string> include_dirs;
};

struct Configuration {
  bool ok = false;
  std::string error;

  std::map<std::string, std::string> option_values;
  std::vector<std::string> global_defines;
  std::vector<std::string> global_flags;
  std::vector<std::string> link_libraries;
  std::vector<std::pair<std::string, std::string>> dependencies;  // name, min ver
  std::vector<std::string> internal_libraries;
  std::vector<ResolvedTarget> targets;
  Environment environment;

  /// Stable identifier of the option assignment, e.g. "MD_MPI=ON,MD_SIMD=AVX_512".
  std::string id() const;

  /// The full compile-command database for this configuration.
  std::vector<CompileCommand> compile_commands(const common::Vfs& source_tree) const;

  /// Lossless serialization (every field): from_json(to_json()) yields a
  /// configuration with identical id() and compile_commands(). Used by
  /// the serving layer to persist deployed configurations alongside
  /// their build artifacts.
  common::Json to_json() const;
  /// Reconstruct to_json() output. Throws common::JsonError on
  /// structurally invalid documents.
  static Configuration from_json(const common::Json& doc);
};

/// Evaluate the script. Unknown option names or invalid choice values are
/// errors; unmet dependencies are reported in `error`.
Configuration configure(const BuildScript& script,
                        const std::map<std::string, std::string>& values,
                        const Environment& env);

/// Cartesian product of the given specialization points (option name ->
/// list of values to expand); every other option keeps its default.
/// LULESH with {MPI, OpenMP} yields four configurations (§4.3).
std::vector<std::map<std::string, std::string>> expand_configurations(
    const BuildScript& script,
    const std::map<std::string, std::vector<std::string>>& points);

}  // namespace xaas::buildsys
