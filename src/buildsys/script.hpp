// Build-script language ("xbuild"): a declarative, line-oriented stand-in
// for CMake that our synthetic HPC applications ship.
//
// The paper's pipeline treats build systems behaviorally — it never
// interprets CMake, only the compile-command databases builds produce
// (§4.2). We still need real build scripts because (a) the configurator
// evaluates them to generate per-configuration compile commands and
// (b) specialization discovery (ground truth + simulated LLMs) parses
// them, exactly like the paper's LLM parses CMakeLists.txt.
//
// Grammar (one command per line, '#' comments):
//   project(NAME)
//   build_system(TYPE MIN_VERSION)
//   minimum_compiler(NAME VERSION)
//   architecture(ARCH)
//   option_bool(NAME "description" ON|OFF)
//   option_multichoice(NAME "description" DEFAULT CHOICE...)
//   category(NAME CATEGORY)        # schema category for discovery
//   simd_option(NAME)              # marks the vectorization multichoice
//   internal_library(NAME FLAG)    # library built in-tree when selected
//   if(COND) / else() / endif()    # COND: X | NOT X | X STREQUAL v
//   add_define(DEF[=VAL])
//   add_flag(FLAG)
//   require_dependency(NAME MIN_VERSION)
//   link_library(NAME)
//   add_target(NAME)
//   target_sources(TARGET PATH...)
//   target_sources_glob(TARGET PATTERN)
//   target_define(TARGET DEF[=VAL])
//   include_dir(TARGET DIR)
//   include_build_dir(TARGET)      # -I<builddir>/include (generated headers)
//   gpu_sources(TARGET BACKEND PATH...)  # sources only built for a backend
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace xaas::buildsys {

struct OptionDef {
  std::string name;
  std::string description;
  bool multichoice = false;
  std::string default_value;          // "ON"/"OFF" for bool options
  std::vector<std::string> choices;   // empty for bool options
  std::string category;               // via category(); "" = uncategorized
  bool is_simd = false;               // via simd_option()
};

struct Condition {
  enum class Kind { Truthy, NotTruthy, Equals, NotEquals };
  Kind kind = Kind::Truthy;
  std::string option;
  std::string value;  // for (Not)Equals
};

/// One effectful command with the conjunction of enclosing if() conditions.
struct Directive {
  enum class Kind {
    AddDefine,
    AddFlag,
    RequireDependency,
    LinkLibrary,
    AddTarget,
    TargetSources,
    TargetSourcesGlob,
    TargetDefine,
    IncludeDir,
    IncludeBuildDir,
    GpuSources,
    InternalLibrary,
  };
  Kind kind;
  std::vector<std::string> args;
  std::vector<Condition> conditions;
};

struct BuildScript {
  std::string project;
  std::string build_system_type = "cmake";
  std::string build_system_min_version;
  std::vector<std::pair<std::string, std::string>> compilers;  // name, min ver
  std::vector<std::string> architectures;
  std::vector<OptionDef> options;
  std::vector<Directive> directives;

  const OptionDef* find_option(const std::string& name) const;
};

struct ParseScriptResult {
  bool ok = false;
  std::string error;
  BuildScript script;
};

ParseScriptResult parse_script(const std::string& text);

}  // namespace xaas::buildsys
