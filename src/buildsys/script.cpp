#include "buildsys/script.hpp"

#include "common/strings.hpp"

namespace xaas::buildsys {

using common::split;
using common::split_ws;
using common::starts_with;
using common::trim;

const OptionDef* BuildScript::find_option(const std::string& name) const {
  for (const auto& opt : options) {
    if (opt.name == name) return &opt;
  }
  return nullptr;
}

namespace {

// Split "cmd(arg1 arg2 "quoted arg" arg3)" into command and args.
// Quoted arguments may contain spaces.
bool split_command(const std::string& line, std::string& cmd,
                   std::vector<std::string>& args, std::string& error) {
  const auto open = line.find('(');
  const auto close = line.rfind(')');
  if (open == std::string::npos || close == std::string::npos ||
      close < open) {
    error = "malformed command: " + line;
    return false;
  }
  cmd = std::string(trim(line.substr(0, open)));
  const std::string inner = line.substr(open + 1, close - open - 1);
  std::string current;
  bool in_quotes = false;
  for (char c : inner) {
    if (c == '"') {
      if (in_quotes) {
        args.push_back(current);  // may be empty
        current.clear();
      }
      in_quotes = !in_quotes;
    } else if (!in_quotes && (c == ' ' || c == '\t')) {
      if (!current.empty()) {
        args.push_back(current);
        current.clear();
      }
    } else {
      current.push_back(c);
    }
  }
  if (in_quotes) {
    error = "unterminated quote: " + line;
    return false;
  }
  if (!current.empty()) args.push_back(current);
  return true;
}

std::optional<Condition> parse_condition(const std::vector<std::string>& args,
                                         std::string& error) {
  Condition cond;
  if (args.size() == 1) {
    cond.kind = Condition::Kind::Truthy;
    cond.option = args[0];
    return cond;
  }
  if (args.size() == 2 && args[0] == "NOT") {
    cond.kind = Condition::Kind::NotTruthy;
    cond.option = args[1];
    return cond;
  }
  if (args.size() == 3 && args[1] == "STREQUAL") {
    cond.kind = Condition::Kind::Equals;
    cond.option = args[0];
    cond.value = args[2];
    return cond;
  }
  if (args.size() == 4 && args[0] == "NOT" && args[2] == "STREQUAL") {
    cond.kind = Condition::Kind::NotEquals;
    cond.option = args[1];
    cond.value = args[3];
    return cond;
  }
  error = "unsupported condition";
  return std::nullopt;
}

}  // namespace

ParseScriptResult parse_script(const std::string& text) {
  ParseScriptResult result;
  BuildScript& script = result.script;

  struct Frame {
    Condition condition;
    bool in_else = false;
  };
  std::vector<Frame> stack;

  const auto active_conditions = [&stack]() {
    std::vector<Condition> conditions;
    for (const auto& frame : stack) {
      Condition c = frame.condition;
      if (frame.in_else) {
        // Negate for the else branch.
        switch (c.kind) {
          case Condition::Kind::Truthy: c.kind = Condition::Kind::NotTruthy; break;
          case Condition::Kind::NotTruthy: c.kind = Condition::Kind::Truthy; break;
          case Condition::Kind::Equals: c.kind = Condition::Kind::NotEquals; break;
          case Condition::Kind::NotEquals: c.kind = Condition::Kind::Equals; break;
        }
      }
      conditions.push_back(std::move(c));
    }
    return conditions;
  };

  const auto fail = [&](const std::string& msg, std::size_t line_no) {
    result.error =
        "script error at line " + std::to_string(line_no + 1) + ": " + msg;
    result.ok = false;
    return result;
  };

  const auto lines = split(text, '\n');
  for (std::size_t ln = 0; ln < lines.size(); ++ln) {
    const std::string_view raw = trim(lines[ln]);
    if (raw.empty() || raw[0] == '#') continue;

    std::string cmd;
    std::vector<std::string> args;
    std::string error;
    if (!split_command(std::string(raw), cmd, args, error)) {
      return fail(error, ln);
    }

    const auto require_args = [&](std::size_t n) {
      return args.size() >= n;
    };

    if (cmd == "project") {
      if (!require_args(1)) return fail("project needs a name", ln);
      script.project = args[0];
    } else if (cmd == "build_system") {
      if (!require_args(2)) return fail("build_system(TYPE VER)", ln);
      script.build_system_type = args[0];
      script.build_system_min_version = args[1];
    } else if (cmd == "minimum_compiler") {
      if (!require_args(2)) return fail("minimum_compiler(NAME VER)", ln);
      script.compilers.emplace_back(args[0], args[1]);
    } else if (cmd == "architecture") {
      if (!require_args(1)) return fail("architecture(ARCH)", ln);
      script.architectures.push_back(args[0]);
    } else if (cmd == "option_bool") {
      if (!require_args(3)) return fail("option_bool(NAME \"desc\" DEF)", ln);
      OptionDef opt;
      opt.name = args[0];
      opt.description = args[1];
      opt.default_value = args[2];
      script.options.push_back(std::move(opt));
    } else if (cmd == "option_multichoice") {
      if (!require_args(4)) {
        return fail("option_multichoice(NAME \"desc\" DEFAULT CHOICES...)", ln);
      }
      OptionDef opt;
      opt.name = args[0];
      opt.description = args[1];
      opt.multichoice = true;
      opt.default_value = args[2];
      opt.choices.assign(args.begin() + 3, args.end());
      script.options.push_back(std::move(opt));
    } else if (cmd == "category") {
      if (!require_args(2)) return fail("category(NAME CAT)", ln);
      bool found = false;
      for (auto& opt : script.options) {
        if (opt.name == args[0]) {
          opt.category = args[1];
          found = true;
        }
      }
      if (!found) return fail("category() for unknown option " + args[0], ln);
    } else if (cmd == "simd_option") {
      if (!require_args(1)) return fail("simd_option(NAME)", ln);
      bool found = false;
      for (auto& opt : script.options) {
        if (opt.name == args[0]) {
          opt.is_simd = true;
          found = true;
        }
      }
      if (!found) return fail("simd_option() for unknown option", ln);
    } else if (cmd == "if") {
      std::string cond_error;
      const auto cond = parse_condition(args, cond_error);
      if (!cond) return fail(cond_error, ln);
      stack.push_back({*cond, false});
    } else if (cmd == "else") {
      if (stack.empty()) return fail("else() without if()", ln);
      if (stack.back().in_else) return fail("duplicate else()", ln);
      stack.back().in_else = true;
    } else if (cmd == "endif") {
      if (stack.empty()) return fail("endif() without if()", ln);
      stack.pop_back();
    } else {
      // Effectful directives.
      static const std::map<std::string, Directive::Kind> kDirectives = {
          {"add_define", Directive::Kind::AddDefine},
          {"add_flag", Directive::Kind::AddFlag},
          {"require_dependency", Directive::Kind::RequireDependency},
          {"link_library", Directive::Kind::LinkLibrary},
          {"add_target", Directive::Kind::AddTarget},
          {"target_sources", Directive::Kind::TargetSources},
          {"target_sources_glob", Directive::Kind::TargetSourcesGlob},
          {"target_define", Directive::Kind::TargetDefine},
          {"include_dir", Directive::Kind::IncludeDir},
          {"include_build_dir", Directive::Kind::IncludeBuildDir},
          {"gpu_sources", Directive::Kind::GpuSources},
          {"internal_library", Directive::Kind::InternalLibrary},
      };
      const auto it = kDirectives.find(cmd);
      if (it == kDirectives.end()) {
        return fail("unknown command: " + cmd, ln);
      }
      Directive d;
      d.kind = it->second;
      d.args = args;
      d.conditions = active_conditions();
      script.directives.push_back(std::move(d));
    }
  }
  if (!stack.empty()) {
    return fail("unterminated if()", lines.size() - 1);
  }
  if (script.project.empty()) {
    return fail("missing project()", 0);
  }
  result.ok = true;
  return result;
}

}  // namespace xaas::buildsys
