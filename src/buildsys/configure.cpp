#include "buildsys/configure.hpp"

#include <algorithm>

#include "common/strings.hpp"
#include "isa/isa.hpp"

namespace xaas::buildsys {

using common::join;
using common::replace_all;

std::string CompileCommand::args_string() const {
  return join(args, " ");
}

std::string Configuration::id() const {
  std::vector<std::string> parts;
  for (const auto& [name, value] : option_values) {
    parts.push_back(name + "=" + value);
  }
  return join(parts, ",");
}

namespace {

common::Json strings_to_json(const std::vector<std::string>& values) {
  common::Json out = common::Json::array();
  for (const auto& v : values) out.push_back(v);
  return out;
}

std::vector<std::string> strings_from_json(const common::Json& doc) {
  std::vector<std::string> out;
  out.reserve(doc.items().size());
  for (const auto& v : doc.items()) out.push_back(v.as_string());
  return out;
}

common::Json map_to_json(const std::map<std::string, std::string>& values) {
  common::Json out = common::Json::object();
  for (const auto& [k, v] : values) out[k] = v;
  return out;
}

std::map<std::string, std::string> map_from_json(const common::Json& doc) {
  std::map<std::string, std::string> out;
  for (const auto& [k, v] : doc.as_object()) out[k] = v->as_string();
  return out;
}

const common::Json& require(const common::Json& doc, const char* key) {
  const common::Json* value = doc.find(key);
  if (!value) {
    throw common::JsonError(std::string("configuration document missing '") +
                            key + "'");
  }
  return *value;
}

}  // namespace

common::Json Configuration::to_json() const {
  common::Json doc = common::Json::object();
  doc["ok"] = ok;
  doc["error"] = error;
  doc["option_values"] = map_to_json(option_values);
  doc["global_defines"] = strings_to_json(global_defines);
  doc["global_flags"] = strings_to_json(global_flags);
  doc["link_libraries"] = strings_to_json(link_libraries);
  common::Json deps = common::Json::array();
  for (const auto& [name, min_version] : dependencies) {
    common::Json entry = common::Json::object();
    entry["name"] = name;
    entry["min_version"] = min_version;
    deps.push_back(std::move(entry));
  }
  doc["dependencies"] = std::move(deps);
  doc["internal_libraries"] = strings_to_json(internal_libraries);
  common::Json target_docs = common::Json::array();
  for (const auto& target : targets) {
    common::Json entry = common::Json::object();
    entry["name"] = target.name;
    entry["sources"] = strings_to_json(target.sources);
    entry["source_globs"] = strings_to_json(target.source_globs);
    entry["defines"] = strings_to_json(target.defines);
    entry["include_dirs"] = strings_to_json(target.include_dirs);
    target_docs.push_back(std::move(entry));
  }
  doc["targets"] = std::move(target_docs);
  common::Json env = common::Json::object();
  env["build_dir"] = environment.build_dir;
  env["dependencies"] = map_to_json(environment.dependencies);
  env["compiler"] = environment.compiler;
  env["compiler_version"] = environment.compiler_version;
  doc["environment"] = std::move(env);
  return doc;
}

Configuration Configuration::from_json(const common::Json& doc) {
  Configuration config;
  config.ok = require(doc, "ok").as_bool();
  config.error = require(doc, "error").as_string();
  config.option_values = map_from_json(require(doc, "option_values"));
  config.global_defines = strings_from_json(require(doc, "global_defines"));
  config.global_flags = strings_from_json(require(doc, "global_flags"));
  config.link_libraries = strings_from_json(require(doc, "link_libraries"));
  for (const auto& entry : require(doc, "dependencies").items()) {
    config.dependencies.emplace_back(require(entry, "name").as_string(),
                                     require(entry, "min_version").as_string());
  }
  config.internal_libraries =
      strings_from_json(require(doc, "internal_libraries"));
  for (const auto& entry : require(doc, "targets").items()) {
    ResolvedTarget target;
    target.name = require(entry, "name").as_string();
    target.sources = strings_from_json(require(entry, "sources"));
    target.source_globs = strings_from_json(require(entry, "source_globs"));
    target.defines = strings_from_json(require(entry, "defines"));
    target.include_dirs = strings_from_json(require(entry, "include_dirs"));
    config.targets.push_back(std::move(target));
  }
  const common::Json& env = require(doc, "environment");
  config.environment.build_dir = require(env, "build_dir").as_string();
  config.environment.dependencies = map_from_json(require(env, "dependencies"));
  config.environment.compiler = require(env, "compiler").as_string();
  config.environment.compiler_version =
      require(env, "compiler_version").as_string();
  return config;
}

namespace {

bool is_truthy(const std::string& v) {
  return v != "OFF" && v != "0" && v != "FALSE" && v != "NO" && !v.empty();
}

bool condition_holds(const Condition& cond,
                     const std::map<std::string, std::string>& values) {
  const auto it = values.find(cond.option);
  const std::string value = it == values.end() ? "" : it->second;
  switch (cond.kind) {
    case Condition::Kind::Truthy: return is_truthy(value);
    case Condition::Kind::NotTruthy: return !is_truthy(value);
    case Condition::Kind::Equals: return value == cond.value;
    case Condition::Kind::NotEquals: return value != cond.value;
  }
  return false;
}

bool all_conditions_hold(const Directive& d,
                         const std::map<std::string, std::string>& values) {
  return std::all_of(d.conditions.begin(), d.conditions.end(),
                     [&](const Condition& c) { return condition_holds(c, values); });
}

// Version strings compare numerically component-wise ("12.4" >= "12.1").
bool version_at_least(const std::string& have, const std::string& need) {
  const auto ha = common::split(have, '.');
  const auto na = common::split(need, '.');
  for (std::size_t i = 0; i < std::max(ha.size(), na.size()); ++i) {
    const int h = i < ha.size() ? std::atoi(ha[i].c_str()) : 0;
    const int n = i < na.size() ? std::atoi(na[i].c_str()) : 0;
    if (h != n) return h > n;
  }
  return true;
}

ResolvedTarget* find_target(Configuration& config, const std::string& name) {
  for (auto& t : config.targets) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

}  // namespace

Configuration configure(const BuildScript& script,
                        const std::map<std::string, std::string>& values,
                        const Environment& env) {
  Configuration config;
  config.environment = env;

  // Resolve option values: defaults overridden by the assignment.
  for (const auto& opt : script.options) {
    config.option_values[opt.name] = opt.default_value;
  }
  for (const auto& [name, value] : values) {
    const OptionDef* opt = script.find_option(name);
    if (!opt) {
      config.error = "unknown option: " + name;
      return config;
    }
    if (opt->multichoice) {
      if (std::find(opt->choices.begin(), opt->choices.end(), value) ==
          opt->choices.end()) {
        config.error = "invalid value '" + value + "' for option " + name;
        return config;
      }
    } else if (value != "ON" && value != "OFF") {
      config.error = "bool option " + name + " must be ON or OFF";
      return config;
    }
    config.option_values[name] = value;
  }

  for (const auto& d : script.directives) {
    if (!all_conditions_hold(d, config.option_values)) continue;
    switch (d.kind) {
      case Directive::Kind::AddDefine:
        config.global_defines.push_back(d.args.at(0));
        break;
      case Directive::Kind::AddFlag:
        config.global_flags.push_back(d.args.at(0));
        break;
      case Directive::Kind::RequireDependency: {
        const std::string& name = d.args.at(0);
        const std::string min_version = d.args.size() > 1 ? d.args[1] : "";
        config.dependencies.emplace_back(name, min_version);
        const auto it = env.dependencies.find(name);
        if (it == env.dependencies.end()) {
          config.error = "missing dependency: " + name;
          return config;
        }
        if (!min_version.empty() && !version_at_least(it->second, min_version)) {
          config.error = "dependency " + name + " version " + it->second +
                         " < required " + min_version;
          return config;
        }
        break;
      }
      case Directive::Kind::LinkLibrary:
        config.link_libraries.push_back(d.args.at(0));
        break;
      case Directive::Kind::InternalLibrary:
        config.internal_libraries.push_back(d.args.at(0));
        break;
      case Directive::Kind::AddTarget:
        config.targets.push_back(ResolvedTarget{d.args.at(0), {}, {}, {}, {}});
        break;
      case Directive::Kind::TargetSources: {
        ResolvedTarget* t = find_target(config, d.args.at(0));
        if (!t) {
          config.error = "target_sources for unknown target " + d.args.at(0);
          return config;
        }
        t->sources.insert(t->sources.end(), d.args.begin() + 1, d.args.end());
        break;
      }
      case Directive::Kind::TargetSourcesGlob: {
        ResolvedTarget* t = find_target(config, d.args.at(0));
        if (!t) {
          config.error =
              "target_sources_glob for unknown target " + d.args.at(0);
          return config;
        }
        t->source_globs.push_back(d.args.at(1));
        break;
      }
      case Directive::Kind::TargetDefine: {
        ResolvedTarget* t = find_target(config, d.args.at(0));
        if (!t) {
          config.error = "target_define for unknown target " + d.args.at(0);
          return config;
        }
        t->defines.push_back(d.args.at(1));
        break;
      }
      case Directive::Kind::IncludeDir: {
        ResolvedTarget* t = find_target(config, d.args.at(0));
        if (!t) {
          config.error = "include_dir for unknown target " + d.args.at(0);
          return config;
        }
        t->include_dirs.push_back(d.args.at(1));
        break;
      }
      case Directive::Kind::IncludeBuildDir: {
        ResolvedTarget* t = find_target(config, d.args.at(0));
        if (!t) {
          config.error = "include_build_dir for unknown target " + d.args.at(0);
          return config;
        }
        t->include_dirs.push_back(env.build_dir + "/include");
        break;
      }
      case Directive::Kind::GpuSources: {
        // gpu_sources(TARGET BACKEND PATH...): only when some option equals
        // BACKEND — by convention guarded with if() in scripts; here the
        // conditions already gated us, so just append.
        ResolvedTarget* t = find_target(config, d.args.at(0));
        if (!t) {
          config.error = "gpu_sources for unknown target " + d.args.at(0);
          return config;
        }
        t->sources.insert(t->sources.end(), d.args.begin() + 2, d.args.end());
        break;
      }
    }
  }

  // Defines derived from option values:
  //  - every multichoice contributes <NAME>_<VALUE> (dots -> underscores),
  //  - the SIMD option additionally contributes the -m<ISA> tuning flag,
  //    which the XaaS vectorization pass later strips and defers (§4.3).
  for (const auto& opt : script.options) {
    const std::string value = config.option_values[opt.name];
    if (!opt.multichoice) continue;
    if (opt.is_simd) {
      config.global_defines.push_back(
          opt.name + "_" + replace_all(replace_all(value, ".", "_"), "-", "_"));
      if (value != "None" && isa::vector_isa_from_string(value)) {
        config.global_flags.push_back("-m" + value);
      }
    } else if (is_truthy(value)) {
      config.global_defines.push_back(
          opt.name + "_" + replace_all(replace_all(value, ".", "_"), "-", "_"));
    }
  }

  config.ok = true;
  return config;
}

std::vector<CompileCommand> Configuration::compile_commands(
    const common::Vfs& source_tree) const {
  std::vector<CompileCommand> commands;
  for (const auto& target : targets) {
    std::vector<std::string> sources = target.sources;
    for (const auto& pattern : target.source_globs) {
      for (auto& match : source_tree.glob(pattern)) {
        sources.push_back(std::move(match));
      }
    }
    for (const auto& src : sources) {
      if (!source_tree.exists(src)) continue;  // conditional files may be absent
      CompileCommand cmd;
      cmd.target = target.name;
      cmd.source = src;
      for (const auto& d : global_defines) cmd.args.push_back("-D" + d);
      for (const auto& d : target.defines) cmd.args.push_back("-D" + d);
      for (const auto& inc : target.include_dirs) cmd.args.push_back("-I" + inc);
      for (const auto& f : global_flags) cmd.args.push_back(f);
      commands.push_back(std::move(cmd));
    }
  }
  return commands;
}

std::vector<std::map<std::string, std::string>> expand_configurations(
    const BuildScript& script,
    const std::map<std::string, std::vector<std::string>>& points) {
  std::vector<std::map<std::string, std::string>> result;
  result.push_back({});
  for (const auto& [name, choices] : points) {
    (void)script;
    std::vector<std::map<std::string, std::string>> next;
    for (const auto& partial : result) {
      for (const auto& choice : choices) {
        auto assignment = partial;
        assignment[name] = choice;
        next.push_back(std::move(assignment));
      }
    }
    result = std::move(next);
  }
  return result;
}

}  // namespace xaas::buildsys
