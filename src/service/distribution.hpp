// Networked artifact distribution: a simulated remote-registry protocol
// over the content-addressed ArtifactStore, priced by the §6.5 fabric
// bandwidth model (fabric::transfer_seconds).
//
// The paper's containers are cheap to *reuse* but expensive to *produce*;
// before this layer every artifact lived on one node's local disk, so a
// new node in a real fleet cold-built everything. Here each gateway's
// store becomes a peer registry in the style of the HPC container pull
// model (Sarus/Shifter, PAPERS.md): peers push and pull self-describing
// blobs addressed by sha256 digest, negotiate deltas so only missing
// layers travel (OCI cross-repo blob mount, at TU/spec granularity),
// lazily pull on first cache miss under the existing single-flight
// leaders, and gossip hot digests around the cluster ring so peers warm
// up before their first request. See docs/DISTRIBUTION.md for the wire
// protocol, failure semantics, and telemetry identities.
//
// Everything is in-process simulation: "sending" a message means charging
// its modeled wire size to the DistributionFabric and invoking the peer
// directly. Transfer time accumulates in integer nanoseconds so the
// telemetry reconciles exactly after drain.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "fabric/bandwidth.hpp"
#include "service/artifact_store.hpp"

namespace xaas::service {

// ---- Wire messages --------------------------------------------------------
//
// Four message shapes make up the whole protocol. Wire sizes follow a
// fixed deterministic model (framing constant + per-entry cost) so runs
// are reproducible; the payload-bearing BlobEnvelope dominates real
// traffic by orders of magnitude.

/// Hex sha256 digest size on the wire.
inline constexpr std::uint64_t kDigestWireBytes = 64;
/// Fixed per-message framing overhead.
inline constexpr std::uint64_t kMessageFrameBytes = 32;
/// Per-entry overhead beyond the digest (size field + separators).
inline constexpr std::uint64_t kEntryOverheadBytes = 8;
/// Per-envelope overhead (digest + framing).
inline constexpr std::uint64_t kEnvelopeOverheadBytes =
    kMessageFrameBytes + kDigestWireBytes;

/// One advertised hot blob: "I have `digest`, it is `bytes` long."
struct WarmHint {
  std::string digest;
  std::uint64_t bytes = 0;
};

/// Everything a peer has: the digest-sorted blob list of its store.
/// Sent by a pusher to open delta negotiation.
struct Manifest {
  std::string peer;  // advertising peer's name
  std::vector<ArtifactStore::BlobRef> blobs;
  std::uint64_t wire_bytes() const {
    return kMessageFrameBytes +
           blobs.size() * (kDigestWireBytes + kEntryOverheadBytes);
  }
};

/// The digests a receiver is missing (reply to a Manifest), or a lazy
/// pull's single wanted digest.
struct BlobRequest {
  std::vector<std::string> digests;
  std::uint64_t wire_bytes() const {
    return kMessageFrameBytes + digests.size() * kDigestWireBytes;
  }
};

/// One blob in flight: the exact on-disk bytes (self-describing header
/// line + payload), so the receiver re-verifies end-to-end before
/// adopting it.
struct BlobEnvelope {
  std::string digest;
  std::string blob;
  std::uint64_t wire_bytes() const {
    return kEnvelopeOverheadBytes + blob.size();
  }
};

/// One gossip round's advertisement: hot digests the sender *has* (the
/// advertise-only-what-you-have invariant — a peer never relays a hint
/// it could not itself serve).
struct GossipMessage {
  std::string from;
  std::vector<WarmHint> hints;
  std::uint64_t wire_bytes() const {
    return kMessageFrameBytes +
           hints.size() * (kDigestWireBytes + kEntryOverheadBytes);
  }
};

/// Outcome of one push (delta or full).
struct PushResult {
  std::size_t shipped = 0;          // envelopes sent
  std::size_t skipped = 0;          // dedup: receiver already had these
  std::uint64_t shipped_bytes = 0;  // envelope wire bytes sent
  std::uint64_t saved_bytes = 0;    // blob bytes dedup avoided shipping
};

// ---- Fabric ---------------------------------------------------------------

struct DistributionOptions {
  /// Bandwidth model pricing every message (§6.5).
  fabric::MpiStack stack{"cluster fabric (container MPICH + cxi)", "mpich",
                         "cxi", true};
  /// Ring successors each gossip round advertises to.
  std::size_t gossip_fanout = 2;
};

/// Monotonic fabric-wide counters. Identities (asserted by tests and the
/// cold_fleet gate; see docs/DISTRIBUTION.md):
///   blobs_sent == blobs_accepted + blobs_rejected
///   bytes_total() == manifest_bytes + request_bytes + blob_bytes
///                    + gossip_bytes
///   messages_total() == manifest_msgs + request_msgs + blobs_sent
///                       + gossip_msgs
struct DistributionStats {
  std::uint64_t manifest_msgs = 0;
  std::uint64_t manifest_bytes = 0;
  std::uint64_t request_msgs = 0;
  std::uint64_t request_bytes = 0;
  std::uint64_t blobs_sent = 0;  // BlobEnvelope messages
  std::uint64_t blob_bytes = 0;
  std::uint64_t gossip_msgs = 0;
  std::uint64_t gossip_bytes = 0;
  std::uint64_t blobs_accepted = 0;
  std::uint64_t blobs_rejected = 0;  // failed verification on arrival
  std::uint64_t dedup_saved_bytes = 0;
  std::uint64_t transfer_nanos = 0;  // modeled wire time, integral

  std::uint64_t messages_total() const {
    return manifest_msgs + request_msgs + blobs_sent + gossip_msgs;
  }
  std::uint64_t bytes_total() const {
    return manifest_bytes + request_bytes + blob_bytes + gossip_bytes;
  }
  double transfer_seconds() const {
    return static_cast<double>(transfer_nanos) * 1e-9;
  }
};

class DistributionPeer;

/// The simulated wire connecting peers: a registration-ordered ring plus
/// the per-message-kind accounting above. Peers register at construction
/// and deregister at destruction; ring order is registration order (the
/// cluster registers gateways in shard order, so the ring is stable and
/// seeded runs are reproducible).
///
/// Thread-safety: all methods are safe from any thread (one mutex guards
/// the ring, atomics carry the counters). Ownership: owned by the
/// Cluster (or a test/bench); must outlive every peer registered on it.
class DistributionFabric {
public:
  enum class MessageKind { Manifest, Request, Blob, Gossip };

  explicit DistributionFabric(DistributionOptions options = {});

  DistributionFabric(const DistributionFabric&) = delete;
  DistributionFabric& operator=(const DistributionFabric&) = delete;

  const DistributionOptions& options() const { return options_; }

  /// Price `wire_bytes` for one message of `kind`: bumps the per-kind
  /// message/byte counters and accumulates transfer_seconds as integer
  /// nanoseconds.
  void charge(MessageKind kind, std::uint64_t wire_bytes);

  void count_sent() { blobs_sent_.fetch_add(1, std::memory_order_relaxed); }
  void count_accepted() {
    blobs_accepted_.fetch_add(1, std::memory_order_relaxed);
  }
  void count_rejected() {
    blobs_rejected_.fetch_add(1, std::memory_order_relaxed);
  }
  void count_saved(std::uint64_t bytes) {
    dedup_saved_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }

  /// Ring snapshot, registration order. Pointers stay valid as long as
  /// the named peers live (they deregister before dying).
  std::vector<DistributionPeer*> peers() const;
  DistributionPeer* find(std::string_view name) const;

  DistributionStats stats() const;

private:
  friend class DistributionPeer;
  void register_peer(DistributionPeer* peer);
  void deregister_peer(DistributionPeer* peer);

  DistributionOptions options_;

  mutable std::mutex mutex_;
  std::vector<DistributionPeer*> ring_;  // registration order

  std::atomic<std::uint64_t> manifest_msgs_{0};
  std::atomic<std::uint64_t> manifest_bytes_{0};
  std::atomic<std::uint64_t> request_msgs_{0};
  std::atomic<std::uint64_t> request_bytes_{0};
  std::atomic<std::uint64_t> blob_msgs_{0};
  std::atomic<std::uint64_t> blob_bytes_{0};
  std::atomic<std::uint64_t> gossip_msgs_{0};
  std::atomic<std::uint64_t> gossip_bytes_{0};
  std::atomic<std::uint64_t> blobs_sent_{0};
  std::atomic<std::uint64_t> blobs_accepted_{0};
  std::atomic<std::uint64_t> blobs_rejected_{0};
  std::atomic<std::uint64_t> dedup_saved_bytes_{0};
  std::atomic<std::uint64_t> transfer_nanos_{0};
};

// ---- Peer -----------------------------------------------------------------

/// Why a blob arrived at a peer — classifies accepted blobs in the
/// per-peer statistics (their sum is blobs_in).
enum class BlobSource { Push, Prewarm, Lazy };

/// Per-peer monotonic counters. Identity (fabric-wide, after drain):
///   fabric blobs_accepted == Σ peers (pushed_in + prewarm_fetches
///                                     + lazy_fetches)
struct PeerStats {
  std::uint64_t blobs_in = 0;   // accepted from any source
  std::uint64_t bytes_in = 0;   // envelope wire bytes accepted
  std::uint64_t blobs_out = 0;  // envelopes served to peers
  std::uint64_t bytes_out = 0;
  std::uint64_t pushed_in = 0;        // accepted via push_to/push_full
  std::uint64_t prewarm_fetches = 0;  // accepted via gossip pre-warming
  std::uint64_t lazy_fetches = 0;     // accepted via ensure_local
  std::uint64_t verify_rejects = 0;   // arrivals that failed verification
};

/// One node's (gateway's) registry endpoint: serves blobs out of its
/// ArtifactStore and adopts verified blobs into it.
///
/// Thread-safety: every method is safe from any thread — counters are
/// atomic, the hot-hint set has its own mutex, and no peer-level lock is
/// ever held across a cross-peer call (so two peers may push/pull/gossip
/// at each other concurrently without deadlock; the stores serialize
/// disk access themselves).
/// Ownership: borrows the ArtifactStore and the DistributionFabric, both
/// of which must outlive the peer. Registers itself on the fabric at
/// construction, deregisters at destruction — destroy peers before the
/// fabric, and quiesce in-flight transfers (the Cluster joins its
/// dispatchers) before destroying any peer.
class DistributionPeer {
public:
  DistributionPeer(std::string name, ArtifactStore& store,
                   DistributionFabric& fabric);
  ~DistributionPeer();

  DistributionPeer(const DistributionPeer&) = delete;
  DistributionPeer& operator=(const DistributionPeer&) = delete;

  const std::string& name() const { return name_; }
  ArtifactStore& store() { return store_; }

  // -- Server side ----------------------------------------------------------

  /// Digest-sorted advertisement of everything in the local store.
  Manifest manifest() const;

  /// The subset of `theirs` this peer does not have (delta negotiation:
  /// the pusher ships exactly these).
  BlobRequest missing_digests(const Manifest& theirs) const;

  /// Serve one blob as an envelope: read + verify from the local store,
  /// then apply the in-flight corruption fault point (dist.transfer) —
  /// corruption strikes *after* the sender's verification, so only the
  /// receiver can catch it. Charges the envelope to the fabric and
  /// counts blobs_out. nullopt when the blob is absent or locally
  /// corrupt (the caller tries another peer).
  std::optional<BlobEnvelope> send_envelope(const std::string& digest);

  /// Adopt an arriving envelope: end-to-end verification against the
  /// digest, then an atomic store write. A blob that fails verification
  /// is rejected — counted, never written, and the transfer degrades to
  /// a miss (the caller re-fetches from another peer); a verify failure
  /// can cost a re-fetch, never a wrong artifact.
  bool accept(const BlobEnvelope& envelope, BlobSource source);

  // -- Client side ----------------------------------------------------------

  /// Delta push: manifest → missing_digests → envelopes for exactly the
  /// digests `target` lacks. Blobs the target already has are skipped
  /// and their bytes counted as dedup savings.
  PushResult push_to(DistributionPeer& target);

  /// Naive full replication (the baseline cold_fleet measures against):
  /// no negotiation, every local blob shipped as an envelope.
  PushResult push_full(DistributionPeer& target);

  /// Lazy pull: make blob_digest(kind, key) local, fetching it from the
  /// first ring peer that can serve it. Called by the tier adapters
  /// below under the caches' single-flight, so one elected leader per
  /// key fetches while the rest wait. A rejected (corrupt-in-flight)
  /// envelope is retried from the next peer. Returns true when the blob
  /// is local afterwards.
  bool ensure_local(std::string_view kind, std::string_view key);

  /// Mark a digest hot: it joins this peer's gossip advertisements once
  /// it is present locally. The spec tier announces on every store
  /// (finished specializations are what the fleet re-requests); TU
  /// intermediates are never announced — they replicate on demand.
  void announce(std::string_view kind, std::string_view key);

  /// One gossip round: advertise (up to) the whole hot set to
  /// `gossip_fanout` ring successors. Receivers pull what they miss.
  /// Returns the number of blobs peers accepted as a result.
  std::size_t gossip_round();

  /// Handle one arriving advertisement: merge the hints into the local
  /// hot set (so they keep propagating around the ring) and pull every
  /// missing advertised blob from `sender`.
  std::size_t receive_gossip(const GossipMessage& message,
                             DistributionPeer& sender);

  PeerStats stats() const;

private:
  std::vector<WarmHint> hot_hints_snapshot() const;

  std::string name_;
  ArtifactStore& store_;
  DistributionFabric& fabric_;

  mutable std::mutex hints_mutex_;
  std::map<std::string, std::uint64_t> hot_hints_;  // digest -> bytes

  std::atomic<std::uint64_t> blobs_in_{0};
  std::atomic<std::uint64_t> bytes_in_{0};
  std::atomic<std::uint64_t> blobs_out_{0};
  std::atomic<std::uint64_t> bytes_out_{0};
  std::atomic<std::uint64_t> pushed_in_{0};
  std::atomic<std::uint64_t> prewarm_fetches_{0};
  std::atomic<std::uint64_t> lazy_fetches_{0};
  std::atomic<std::uint64_t> verify_rejects_{0};
};

// ---- Remote cache tiers ---------------------------------------------------
//
// The fourth cache level (memory → disk → remote registry → build): each
// adapter fronts the local disk tier and, on a load, first asks the peer
// to ensure the blob is local (a no-op when it already is). Because the
// caches consult their disk tier only from the elected single-flight
// leader, exactly one remote fetch happens per cold key per node.

/// SpecDiskTier with a remote-registry level under the local store.
class SpecDistributionTier : public SpecDiskTier {
public:
  SpecDistributionTier(DistributionPeer& peer, bool predecode = true)
      : peer_(peer), local_(peer.store(), predecode) {}

  std::shared_ptr<const DeployedApp> load(const SpecKey& key) override;
  void store(const SpecKey& key, const DeployedApp& app) override;

private:
  DistributionPeer& peer_;
  SpecArtifactTier local_;
};

/// TuDiskTier with a remote-registry level under the local store. Unlike
/// the spec tier, stores are NOT announced to gossip: TU blobs travel
/// only by lazy pull and delta push, so pre-warming stays proportional
/// to the hot-class working set, not the whole build cache.
class TuDistributionTier : public minicc::TuDiskTier {
public:
  explicit TuDistributionTier(DistributionPeer& peer)
      : peer_(peer), local_(peer.store()) {}

  std::shared_ptr<const minicc::MachineModule> load(
      const minicc::TuKey& key) override;
  void store(const minicc::TuKey& key,
             const minicc::MachineModule& machine) override;

private:
  DistributionPeer& peer_;
  TuArtifactTier local_;
};

}  // namespace xaas::service
