#include "service/spec_cache.hpp"

#include <algorithm>
#include <chrono>

#include "common/hashing.hpp"

namespace xaas::service {

std::string SpecKey::to_string() const {
  std::string out;
  common::key_append(out, digest);
  common::key_append(out, selections);
  common::key_append(out, target.to_string());
  return out;
}

SpecializationCache::SpecializationCache(std::size_t shard_count) {
  shard_count = std::max<std::size_t>(1, shard_count);
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

SpecializationCache::Shard& SpecializationCache::shard_for(
    const std::string& key) {
  return *shards_[common::shard_index(key, shards_.size())];
}

const SpecializationCache::Shard& SpecializationCache::shard_for(
    const std::string& key) const {
  return *shards_[common::shard_index(key, shards_.size())];
}

void SpecializationCache::publish_fast_path(
    const SpecKey& key, std::shared_ptr<const DeployedApp> app,
    std::uint64_t generation) {
  std::lock_guard lock(publish_mutex_);
  // A clear() since this resolution started invalidated the key: do not
  // resurrect the entry into the fresh generation's snapshot.
  if (generation_.load(std::memory_order_relaxed) != generation) return;
  fast_path_.update([&](FastMap& map) { map[key] = std::move(app); });
}

std::shared_ptr<const DeployedApp> SpecializationCache::get_or_deploy(
    const SpecKey& key, const Deployer& deploy, bool* was_hit) {
  const std::uint64_t generation =
      generation_.load(std::memory_order_acquire);

  // Wait-free fast path: a completed successful deployment is served
  // straight from the pinned snapshot — no shard mutex, no future, and
  // (because the map is keyed by SpecKey) no composite-string
  // materialization. Relaxed counter: hits_ is a statistic, not a
  // synchronization edge.
  {
    const auto fast = fast_path_.read();
    const auto it = fast->find(key);
    if (it != fast->end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      if (was_hit) *was_hit = true;
      if (observer_) {
        Event event;
        event.hit = true;
        observer_(event);
      }
      return it->second;
    }
  }

  const std::string composite = key.to_string();
  Shard& shard = shard_for(composite);

  std::shared_future<std::shared_ptr<const DeployedApp>> future;
  std::promise<std::shared_ptr<const DeployedApp>> promise;
  bool deployer = false;
  std::uint64_t my_id = 0;
  {
    std::lock_guard lock(shard.mutex);
    const auto it = shard.entries.find(composite);
    if (it != shard.entries.end()) {
      future = it->second.future;
    } else {
      future = promise.get_future().share();
      my_id = next_id_.fetch_add(1);
      shard.entries.emplace(composite, Entry{future, my_id});
      deployer = true;
    }
  }

  if (!deployer) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    if (was_hit) *was_hit = true;
    if (observer_) {
      Event event;
      event.hit = true;
      observer_(event);
    }
    return future.get();  // blocks while the elected deployer lowers
  }

  // Elected deployer: consult the persistent tier before paying the
  // lowering. Only the leader probes the disk, so the single-flight
  // guarantee spans both tiers — concurrent requests for one key read
  // the blob and deserialize at most once.
  if (disk_tier_) {
    std::shared_ptr<const DeployedApp> revived = disk_tier_->load(key);
    if (revived && revived->ok) {
      disk_hits_.fetch_add(1, std::memory_order_relaxed);
      // The caller reused a cached artifact (it paid no lowering), which
      // is what `cache_hit` means to the fleet-result consumers.
      if (was_hit) *was_hit = true;
      publish_fast_path(key, revived, generation);
      promise.set_value(revived);
      if (observer_) {
        Event event;
        event.disk_hit = true;
        observer_(event);
      }
      return revived;
    }
  }

  misses_.fetch_add(1, std::memory_order_relaxed);
  lowerings_.fetch_add(1, std::memory_order_relaxed);
  if (was_hit) *was_hit = false;
  const auto deploy_start = std::chrono::steady_clock::now();
  const auto notify_deployed = [&](bool ok) {
    if (!observer_) return;
    Event event;
    event.deployed = true;
    event.ok = ok;
    event.deploy_seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - deploy_start)
                               .count();
    observer_(event);
  };
  const auto erase_own_entry = [&] {
    std::lock_guard lock(shard.mutex);
    const auto it = shard.entries.find(composite);
    // Erase only the entry this thread published: after a clear() race,
    // the key may hold a newer in-flight deployment that must survive.
    if (it != shard.entries.end() && it->second.id == my_id) {
      shard.entries.erase(it);
    }
  };

  std::shared_ptr<const DeployedApp> result;
  try {
    result = deploy();
  } catch (...) {
    // Never leave waiters hanging: erase the entry, then publish an
    // empty result. Erasing FIRST matters — a requester arriving between
    // publication and a late erase would count a completed-failed entry
    // as a hit.
    erase_own_entry();
    promise.set_value(nullptr);
    notify_deployed(false);
    throw;
  }
  if (!result || !result->ok) {
    // Failed lowerings are never cached: erase before publishing, so the
    // failure reaches only the waiters already blocked on this future —
    // every later requester elects a fresh deployer. (Those waiters see
    // cache_hit=true with a failed result; the Gateway's retry loop
    // treats that as "inherited a leader's failure" and retries
    // immediately rather than propagating the error.)
    erase_own_entry();
    promise.set_value(result);
  } else {
    publish_fast_path(key, result, generation);
    promise.set_value(result);
    if (disk_tier_) {
      // Persist after publishing so waiters are never blocked on the
      // serialization/write; a failed store just means the next process
      // starts cold for this key.
      disk_tier_->store(key, *result);
    }
  }
  notify_deployed(result && result->ok);
  return result;
}

std::shared_ptr<const DeployedApp> SpecializationCache::get(
    const SpecKey& key) const {
  {
    const auto fast = fast_path_.read();
    const auto it = fast->find(key);
    if (it != fast->end()) return it->second;
  }
  const std::string composite = key.to_string();
  const Shard& shard = shard_for(composite);
  std::shared_future<std::shared_ptr<const DeployedApp>> future;
  {
    std::lock_guard lock(shard.mutex);
    const auto it = shard.entries.find(composite);
    if (it == shard.entries.end()) return nullptr;
    future = it->second.future;
  }
  // Probe semantics: an in-flight deployment is a miss, not a block; a
  // completed-but-failed one (awaiting its deployer's cleanup) is too.
  if (future.wait_for(std::chrono::seconds(0)) !=
      std::future_status::ready) {
    return nullptr;
  }
  const auto app = future.get();
  return (app && app->ok) ? app : nullptr;
}

void SpecializationCache::clear() {
  {
    // Bump the generation before emptying the snapshot: an in-flight
    // deployer that elected before this clear() fails its generation
    // check and cannot resurrect its key afterwards.
    std::lock_guard lock(publish_mutex_);
    generation_.fetch_add(1, std::memory_order_release);
    fast_path_.store(std::make_unique<FastMap>());
  }
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    shard->entries.clear();
  }
}

std::size_t SpecializationCache::entry_count() const {
  std::size_t count = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    count += shard->entries.size();
  }
  return count;
}

}  // namespace xaas::service
