#include "service/fair_queue.hpp"

#include <algorithm>

namespace xaas::service {

TokenBucket::TokenBucket(TenantQuota quota, double now)
    : quota_(quota), tokens_(quota.burst), last_(now) {
  if (quota_.burst < 0.0) quota_.burst = 0.0;
  if (quota_.rate_per_second < 0.0) quota_.rate_per_second = 0.0;
  tokens_ = quota_.burst;
}

double TokenBucket::refilled(double now) const {
  const double elapsed = now > last_ ? now - last_ : 0.0;
  return std::min(quota_.burst, tokens_ + elapsed * quota_.rate_per_second);
}

bool TokenBucket::try_acquire(double now, double cost) {
  // An oversized request costs at most a full bucket (see header).
  cost = std::min(cost, quota_.burst);
  const double available = refilled(now);
  if (available + 1e-12 < cost) {
    // Deny without consuming, but anchor the refill so tokens() stays
    // consistent for subsequent calls at the same `now`.
    tokens_ = available;
    if (now > last_) last_ = now;
    return false;
  }
  tokens_ = available - cost;
  if (now > last_) last_ = now;
  return true;
}

double TokenBucket::retry_after_seconds(double now, double cost) const {
  cost = std::min(cost, quota_.burst);
  const double available = refilled(now);
  if (available + 1e-12 >= cost) return 0.0;
  if (quota_.rate_per_second <= 0.0) return 3600.0;  // never refills: cap
  return (cost - available) / quota_.rate_per_second;
}

double TokenBucket::tokens(double now) const { return refilled(now); }

void QuotaSet::set_quota(const std::string& tenant, TenantQuota quota) {
  std::lock_guard lock(mutex_);
  overrides_[tenant] = quota;
  buckets_.erase(tenant);  // rebuilt from the new quota on first use
}

bool QuotaSet::try_admit(const std::string& tenant, double now, double cost,
                         double* retry_after) {
  std::lock_guard lock(mutex_);
  auto it = buckets_.find(tenant);
  if (it == buckets_.end()) {
    const auto override_it = overrides_.find(tenant);
    const TenantQuota quota =
        override_it != overrides_.end() ? override_it->second : default_;
    it = buckets_.emplace(tenant, TokenBucket(quota, now)).first;
  }
  if (it->second.try_acquire(now, cost)) {
    if (retry_after != nullptr) *retry_after = 0.0;
    return true;
  }
  if (retry_after != nullptr) {
    // A zero hint would invite an immediate (and doomed) resubmit; the
    // bucket is exhausted, so the true wait is strictly positive.
    *retry_after =
        std::max(1e-6, it->second.retry_after_seconds(now, cost));
  }
  return false;
}

double QuotaSet::weight(const std::string& tenant) const {
  std::lock_guard lock(mutex_);
  const auto it = overrides_.find(tenant);
  return it != overrides_.end() ? it->second.weight : default_.weight;
}

TenantQuota QuotaSet::quota(const std::string& tenant) const {
  std::lock_guard lock(mutex_);
  const auto it = overrides_.find(tenant);
  return it != overrides_.end() ? it->second : default_;
}

}  // namespace xaas::service
