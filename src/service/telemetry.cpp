#include "service/telemetry.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <mutex>

namespace xaas::service::telemetry {

std::size_t Counter::stripe() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t index =
      next.fetch_add(1, std::memory_order_relaxed) % kStripes;
  return index;
}

const std::vector<double>& Histogram::upper_bounds() {
  static const std::vector<double> bounds = [] {
    std::vector<double> b;
    // 1-2-5 ladder: 1 µs .. 60 s (24 finite bounds).
    for (const double decade :
         {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0}) {
      b.push_back(decade);
      b.push_back(2 * decade);
      b.push_back(5 * decade);
    }
    b.push_back(10.0);
    b.push_back(30.0);
    b.push_back(60.0);
    return b;
  }();
  return bounds;
}

void Histogram::observe(double seconds) noexcept {
  if (!(seconds >= 0.0)) seconds = 0.0;  // NaN/negative clamp to zero
  const auto& bounds = upper_bounds();
  // Linear scan: 24 doubles, typically exits in the first decade — cheaper
  // and simpler than binary search at this size.
  std::size_t bucket = bounds.size();  // overflow by default
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    if (seconds <= bounds[i]) {
      bucket = i;
      break;
    }
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  const double clamped =
      std::min(seconds, 1.8e10);  // keep nanos within uint64
  const auto nanos = static_cast<std::uint64_t>(clamped * 1e9);
  sum_nanos_.fetch_add(nanos, std::memory_order_relaxed);
  std::uint64_t seen = max_nanos_.load(std::memory_order_relaxed);
  while (nanos > seen &&
         !max_nanos_.compare_exchange_weak(seen, nanos,
                                           std::memory_order_relaxed)) {
  }
}

std::uint64_t MetricsSnapshot::counter(const std::string& name) const {
  const auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

std::int64_t MetricsSnapshot::gauge(const std::string& name) const {
  const auto it = gauges.find(name);
  return it == gauges.end() ? 0 : it->second;
}

namespace {

std::string format_seconds(double seconds) {
  char buf[32];
  if (seconds >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3fs", seconds);
  } else if (seconds >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.3fms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fus", seconds * 1e6);
  }
  return buf;
}

}  // namespace

double HistogramSnapshot::quantile_upper_seconds(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  std::uint64_t cumulative = 0;
  for (const auto& [bound, bucket_count] : buckets) {
    cumulative += bucket_count;
    if (cumulative >= target) {
      // The overflow bucket's bound is +inf; the observed max is the
      // tightest finite bound we have for it.
      return std::isinf(bound) ? max_seconds : bound;
    }
  }
  return max_seconds;
}

std::string MetricsSnapshot::render() const {
  std::string out;
  out += "-- telemetry --------------------------------------------------\n";
  for (const auto& [name, value] : counters) {
    out += name + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : gauges) {
    out += name + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, hist] : histograms) {
    out += name + " count=" + std::to_string(hist.count) +
           " mean=" + format_seconds(hist.mean_seconds()) +
           " max=" + format_seconds(hist.max_seconds) + "\n";
    for (const auto& [bound, count] : hist.buckets) {
      if (count == 0) continue;
      const std::string label =
          std::isinf(bound) ? std::string("+inf") : format_seconds(bound);
      out += "  le " + label + ": " + std::to_string(count) + "\n";
    }
  }
  out += "---------------------------------------------------------------\n";
  return out;
}

template <typename T>
T& MetricsRegistry::get_or_create(
    std::map<std::string, std::unique_ptr<T>>& map, const std::string& name) {
  {
    std::shared_lock lock(mutex_);
    const auto it = map.find(name);
    if (it != map.end()) return *it->second;
  }
  std::unique_lock lock(mutex_);
  auto& slot = map[name];
  if (!slot) slot = std::make_unique<T>();
  return *slot;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  return get_or_create(counters_, name);
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  return get_or_create(gauges_, name);
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  return get_or_create(histograms_, name);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  std::shared_lock lock(mutex_);
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace(name, counter->value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace(name, gauge->value());
  }
  const auto& bounds = Histogram::upper_bounds();
  for (const auto& [name, hist] : histograms_) {
    HistogramSnapshot h;
    h.count = hist->count();
    h.sum_seconds = hist->sum_seconds();
    h.max_seconds = hist->max_seconds();
    h.buckets.reserve(Histogram::kBucketCount);
    for (std::size_t i = 0; i < Histogram::kBucketCount; ++i) {
      const double bound = i < bounds.size()
                               ? bounds[i]
                               : std::numeric_limits<double>::infinity();
      h.buckets.emplace_back(bound, hist->bucket_count(i));
    }
    snap.histograms.emplace(name, std::move(h));
  }
  return snap;
}

}  // namespace xaas::service::telemetry
