// Source-container build farm (§4.1 at fleet scale): many heterogeneous
// nodes pull one source image and build on-system after discovery →
// intersection → selection. Rebuilding per node is the expensive half of
// the XaaS story, and almost all of it is redundant — so the farm caches
// at TWO granularities:
//
//  - whole deployments, single-flight, keyed by (source image digest,
//    canonical resolved option values, resolved TargetSpec) — a fleet of
//    one microarchitecture builds once (the SpecializationCache reused
//    from the IR path);
//  - individual translation units, keyed by (source, post-preprocess
//    content hash, codegen-relevant flags, TargetSpec) in a per-image
//    minicc::CompileCache — two *different* whole-program builds (say,
//    MKL-FFT on Sapphire Rapids and FFTW on Skylake-AVX512) that agree
//    on a TU's preprocessed text and target share that TU's compiled
//    module instead of compiling it twice.
//
// Applications are reconstructed from the image itself (source tree +
// xbuild script travel in the layers), so a farm needs only a registry
// reference per request, exactly like the IR scheduler.
#pragma once

#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "minicc/compile_cache.hpp"
#include "service/artifact_store.hpp"
#include "service/deploy_scheduler.hpp"
#include "service/sharded_registry.hpp"
#include "service/spec_cache.hpp"

namespace xaas::service {

struct SourceDeployRequest {
  vm::NodeSpec node;
  std::string image_reference;  // tag or "sha256:..." digest
  SourceDeployOptions options;
};

struct BuildFarmOptions {
  /// Worker threads for build fan-out (0 = hardware concurrency).
  std::size_t threads = 0;
  /// Shards of the whole-deployment cache.
  std::size_t cache_shards = 16;
  /// Pre-decode each cached program once at build time for the VM.
  bool predecode = true;
  /// Route per-TU compiles through the shared compile cache. Disable to
  /// measure the whole-deployment cache alone.
  bool tu_cache = true;
  /// Persistent tier: when non-null, whole deployments and compiled TUs
  /// are persisted to (and revived from) this store, so a fresh farm
  /// pointed at a populated directory warm-starts with zero compiles.
  /// Borrowed — the store must outlive the farm.
  ArtifactStore* artifact_store = nullptr;
  /// Remote-registry level under the disk tier: when non-null, a cache
  /// miss (whole deployment or individual TU) first tries to pull the
  /// blob from ring peers before building. The peer must front the same
  /// store as `artifact_store`. Borrowed.
  DistributionPeer* distribution = nullptr;
};

/// Source-container build farm (the §4.1 path at fleet scale).
///
/// Thread-safety: submit(), deploy(), deploy_batch(), and the stats
/// accessors are safe from any thread; deploy() is additionally safe to
/// call from another scheduler's worker (the farm contributes caches,
/// not its pool). set_tu_observer() must be called before the farm
/// starts serving (earlier-created per-image caches keep running
/// unobserved).
/// Ownership: borrows the ShardedRegistry (must outlive the farm); owns
/// its whole-deployment SpecializationCache, per-image reconstructed
/// Applications and TU CompileCaches, and its ThreadPool. Deployed apps
/// are handed out as shared_ptr<const DeployedApp>.
class BuildFarm {
public:
  explicit BuildFarm(ShardedRegistry& registry, BuildFarmOptions options = {});

  BuildFarm(const BuildFarm&) = delete;
  BuildFarm& operator=(const BuildFarm&) = delete;

  /// Asynchronously build-deploy one request on the pool.
  std::future<FleetDeployResult> submit(SourceDeployRequest request);

  /// Deploy a batch, fanning out over the pool; results are returned in
  /// request order after all complete.
  std::vector<FleetDeployResult> deploy_batch(
      std::vector<SourceDeployRequest> requests);

  /// Synchronous single deploy (the pool is bypassed; the caches are
  /// not). Safe to call from another scheduler's worker thread.
  FleetDeployResult deploy(const SourceDeployRequest& request);

  /// Whole-deployment cache (hits/misses/lowerings = full builds).
  const SpecializationCache& cache() const { return cache_; }
  SpecializationCache& cache() { return cache_; }

  /// Telemetry observer applied to every per-image TU compile cache the
  /// farm creates (the Gateway points it at its metrics registry). Set it
  /// before the farm starts serving: caches created earlier keep running
  /// unobserved.
  void set_tu_observer(minicc::CompileCache::Observer observer);

  // TU-level statistics aggregated over every per-image compile cache.
  /// Translation-unit compilations actually performed.
  std::size_t tu_compiles() const;
  /// TU compile requests served from the cache.
  std::size_t tu_cache_hits() const;
  /// TU modules revived from the persistent tier instead of compiling.
  std::size_t tu_disk_hits() const;

private:
  /// Per-source-image-digest state: the reconstructed application and the
  /// TU compile cache bound to its source tree, both built once.
  struct ImageState {
    std::shared_ptr<const Application> app;  // null when reconstruction failed
    std::string app_error;
    std::shared_ptr<minicc::CompileCache> tu_cache;
  };

  std::shared_ptr<const ImageState> state_for(const std::string& digest,
                                              const container::Image& image);

  ShardedRegistry& registry_;
  BuildFarmOptions options_;
  SpecializationCache cache_;
  // Adapters over options_.artifact_store (null when no store): installed
  // on cache_ and on every per-image TU cache the farm creates. With
  // options_.distribution set these are the *DistributionTier variants.
  std::unique_ptr<SpecDiskTier> spec_tier_;
  std::unique_ptr<minicc::TuDiskTier> tu_tier_;

  mutable std::mutex states_mutex_;
  std::map<std::string, std::shared_ptr<const ImageState>> states_;
  minicc::CompileCache::Observer tu_observer_;  // guarded by states_mutex_

  // Declared last, destroyed first: ~ThreadPool drains queued build
  // tasks, which still use cache_ and states_ above.
  common::ThreadPool pool_;
};

}  // namespace xaas::service
