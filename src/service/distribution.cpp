#include "service/distribution.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "service/fault.hpp"

namespace xaas::service {

// ---- DistributionFabric ---------------------------------------------------

DistributionFabric::DistributionFabric(DistributionOptions options)
    : options_(std::move(options)) {}

void DistributionFabric::charge(MessageKind kind, std::uint64_t wire_bytes) {
  switch (kind) {
    case MessageKind::Manifest:
      manifest_msgs_.fetch_add(1, std::memory_order_relaxed);
      manifest_bytes_.fetch_add(wire_bytes, std::memory_order_relaxed);
      break;
    case MessageKind::Request:
      request_msgs_.fetch_add(1, std::memory_order_relaxed);
      request_bytes_.fetch_add(wire_bytes, std::memory_order_relaxed);
      break;
    case MessageKind::Blob:
      blob_msgs_.fetch_add(1, std::memory_order_relaxed);
      blob_bytes_.fetch_add(wire_bytes, std::memory_order_relaxed);
      break;
    case MessageKind::Gossip:
      gossip_msgs_.fetch_add(1, std::memory_order_relaxed);
      gossip_bytes_.fetch_add(wire_bytes, std::memory_order_relaxed);
      break;
  }
  // Integer nanoseconds so concurrent charges sum exactly — the
  // reconciliation identities tolerate no floating-point drift.
  const auto nanos = static_cast<std::uint64_t>(
      std::llround(fabric::transfer_seconds(options_.stack, wire_bytes) * 1e9));
  transfer_nanos_.fetch_add(nanos, std::memory_order_relaxed);
}

void DistributionFabric::register_peer(DistributionPeer* peer) {
  std::lock_guard lock(mutex_);
  ring_.push_back(peer);
}

void DistributionFabric::deregister_peer(DistributionPeer* peer) {
  std::lock_guard lock(mutex_);
  ring_.erase(std::remove(ring_.begin(), ring_.end(), peer), ring_.end());
}

std::vector<DistributionPeer*> DistributionFabric::peers() const {
  std::lock_guard lock(mutex_);
  return ring_;
}

DistributionPeer* DistributionFabric::find(std::string_view name) const {
  std::lock_guard lock(mutex_);
  for (DistributionPeer* peer : ring_) {
    if (peer->name() == name) return peer;
  }
  return nullptr;
}

DistributionStats DistributionFabric::stats() const {
  DistributionStats stats;
  stats.manifest_msgs = manifest_msgs_.load(std::memory_order_relaxed);
  stats.manifest_bytes = manifest_bytes_.load(std::memory_order_relaxed);
  stats.request_msgs = request_msgs_.load(std::memory_order_relaxed);
  stats.request_bytes = request_bytes_.load(std::memory_order_relaxed);
  stats.blobs_sent = blob_msgs_.load(std::memory_order_relaxed);
  stats.blob_bytes = blob_bytes_.load(std::memory_order_relaxed);
  stats.gossip_msgs = gossip_msgs_.load(std::memory_order_relaxed);
  stats.gossip_bytes = gossip_bytes_.load(std::memory_order_relaxed);
  stats.blobs_accepted = blobs_accepted_.load(std::memory_order_relaxed);
  stats.blobs_rejected = blobs_rejected_.load(std::memory_order_relaxed);
  stats.dedup_saved_bytes =
      dedup_saved_bytes_.load(std::memory_order_relaxed);
  stats.transfer_nanos = transfer_nanos_.load(std::memory_order_relaxed);
  return stats;
}

// ---- DistributionPeer -----------------------------------------------------

DistributionPeer::DistributionPeer(std::string name, ArtifactStore& store,
                                   DistributionFabric& fabric)
    : name_(std::move(name)), store_(store), fabric_(fabric) {
  fabric_.register_peer(this);
}

DistributionPeer::~DistributionPeer() { fabric_.deregister_peer(this); }

Manifest DistributionPeer::manifest() const {
  Manifest m;
  m.peer = name_;
  m.blobs = store_.enumerate_blobs();
  return m;
}

BlobRequest DistributionPeer::missing_digests(const Manifest& theirs) const {
  BlobRequest need;
  for (const auto& ref : theirs.blobs) {
    if (!store_.contains_blob(ref.digest)) need.digests.push_back(ref.digest);
  }
  return need;
}

std::optional<BlobEnvelope> DistributionPeer::send_envelope(
    const std::string& digest) {
  auto blob = store_.read_blob(digest);
  if (!blob) return std::nullopt;  // absent, or locally corrupt (deleted)
  BlobEnvelope envelope;
  envelope.digest = digest;
  envelope.blob = std::move(*blob);
  // In-flight corruption strikes after the sender's read-side
  // verification: the sender believes it shipped a good blob, and only
  // the receiver's end-to-end check can catch the damage.
  fault::corrupts(fault::kDistTransfer, digest, envelope.blob);
  const std::uint64_t wire = envelope.wire_bytes();
  fabric_.charge(DistributionFabric::MessageKind::Blob, wire);
  fabric_.count_sent();
  blobs_out_.fetch_add(1, std::memory_order_relaxed);
  bytes_out_.fetch_add(wire, std::memory_order_relaxed);
  return envelope;
}

bool DistributionPeer::accept(const BlobEnvelope& envelope, BlobSource source) {
  if (!store_.adopt_blob(envelope.digest, envelope.blob)) {
    fabric_.count_rejected();
    verify_rejects_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  fabric_.count_accepted();
  blobs_in_.fetch_add(1, std::memory_order_relaxed);
  bytes_in_.fetch_add(envelope.wire_bytes(), std::memory_order_relaxed);
  switch (source) {
    case BlobSource::Push:
      pushed_in_.fetch_add(1, std::memory_order_relaxed);
      break;
    case BlobSource::Prewarm:
      prewarm_fetches_.fetch_add(1, std::memory_order_relaxed);
      break;
    case BlobSource::Lazy:
      lazy_fetches_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  return true;
}

PushResult DistributionPeer::push_to(DistributionPeer& target) {
  PushResult result;
  const Manifest mine = manifest();
  fabric_.charge(DistributionFabric::MessageKind::Manifest, mine.wire_bytes());
  const BlobRequest need = target.missing_digests(mine);
  fabric_.charge(DistributionFabric::MessageKind::Request, need.wire_bytes());

  // Dedup accounting: every advertised blob the target already had is a
  // layer the naive protocol would have re-shipped.
  std::uint64_t needed_bytes = 0;
  std::uint64_t advertised_bytes = 0;
  for (const auto& ref : mine.blobs) advertised_bytes += ref.bytes;
  for (const auto& digest : need.digests) {
    const auto it = std::find_if(
        mine.blobs.begin(), mine.blobs.end(),
        [&](const ArtifactStore::BlobRef& ref) { return ref.digest == digest; });
    if (it != mine.blobs.end()) needed_bytes += it->bytes;
  }
  result.skipped = mine.blobs.size() - need.digests.size();
  result.saved_bytes = advertised_bytes - needed_bytes;
  fabric_.count_saved(result.saved_bytes);

  for (const auto& digest : need.digests) {
    const auto envelope = send_envelope(digest);
    if (!envelope) continue;
    if (target.accept(*envelope, BlobSource::Push)) {
      ++result.shipped;
      result.shipped_bytes += envelope->wire_bytes();
    }
  }
  return result;
}

PushResult DistributionPeer::push_full(DistributionPeer& target) {
  PushResult result;
  for (const auto& ref : store_.enumerate_blobs()) {
    const auto envelope = send_envelope(ref.digest);
    if (!envelope) continue;
    if (target.accept(*envelope, BlobSource::Push)) {
      ++result.shipped;
      result.shipped_bytes += envelope->wire_bytes();
    }
  }
  return result;
}

bool DistributionPeer::ensure_local(std::string_view kind,
                                    std::string_view key) {
  const std::string digest = ArtifactStore::blob_digest(kind, key);
  if (store_.contains_blob(digest)) return true;

  // Walk the ring starting after this peer (registration order), asking
  // each peer in turn. A rejected envelope — corrupted in flight — is
  // retried from the next peer: a transfer fault costs a re-fetch,
  // never a wrong artifact and never a spurious rebuild while any peer
  // still holds a good copy.
  const auto ring = fabric_.peers();
  const auto self =
      std::find(ring.begin(), ring.end(), static_cast<DistributionPeer*>(this));
  const std::size_t start =
      self == ring.end() ? 0 : static_cast<std::size_t>(self - ring.begin());
  for (std::size_t i = 1; i <= ring.size(); ++i) {
    DistributionPeer* peer = ring[(start + i) % ring.size()];
    if (peer == this) continue;
    BlobRequest want;
    want.digests.push_back(digest);
    fabric_.charge(DistributionFabric::MessageKind::Request, want.wire_bytes());
    const auto envelope = peer->send_envelope(digest);
    if (!envelope) continue;  // peer does not have it
    if (accept(*envelope, BlobSource::Lazy)) return true;
  }
  return store_.contains_blob(digest);
}

void DistributionPeer::announce(std::string_view kind, std::string_view key) {
  const std::string digest = ArtifactStore::blob_digest(kind, key);
  std::lock_guard lock(hints_mutex_);
  auto& bytes = hot_hints_[digest];
  if (bytes == 0) bytes = store_.blob_bytes(digest);
}

std::vector<WarmHint> DistributionPeer::hot_hints_snapshot() const {
  // Advertise only what we have: a hint merged from gossip stays latent
  // until the local pull lands, so no peer ever relays an advertisement
  // it could not serve.
  std::vector<std::pair<std::string, std::uint64_t>> hints;
  {
    std::lock_guard lock(hints_mutex_);
    hints.assign(hot_hints_.begin(), hot_hints_.end());
  }
  std::vector<WarmHint> present;
  for (auto& [digest, bytes] : hints) {
    if (!store_.contains_blob(digest)) continue;
    present.push_back({digest, bytes != 0 ? bytes : store_.blob_bytes(digest)});
  }
  return present;
}

std::size_t DistributionPeer::gossip_round() {
  GossipMessage message;
  message.from = name_;
  message.hints = hot_hints_snapshot();
  if (message.hints.empty()) return 0;

  const auto ring = fabric_.peers();
  if (ring.size() < 2) return 0;
  const auto self =
      std::find(ring.begin(), ring.end(), static_cast<DistributionPeer*>(this));
  const std::size_t start =
      self == ring.end() ? 0 : static_cast<std::size_t>(self - ring.begin());
  const std::size_t fanout =
      std::min(fabric_.options().gossip_fanout, ring.size() - 1);
  std::size_t accepted = 0;
  for (std::size_t i = 1; i <= fanout; ++i) {
    DistributionPeer* successor = ring[(start + i) % ring.size()];
    if (successor == this) continue;
    fabric_.charge(DistributionFabric::MessageKind::Gossip,
                   message.wire_bytes());
    accepted += successor->receive_gossip(message, *this);
  }
  return accepted;
}

std::size_t DistributionPeer::receive_gossip(const GossipMessage& message,
                                             DistributionPeer& sender) {
  // Merge first (under the hints mutex), pull after (lock released): a
  // pull re-enters the sender's store and must never run under any
  // peer-level lock.
  {
    std::lock_guard lock(hints_mutex_);
    for (const auto& hint : message.hints) {
      auto& bytes = hot_hints_[hint.digest];
      if (bytes == 0) bytes = hint.bytes;
    }
  }
  std::size_t accepted = 0;
  for (const auto& hint : message.hints) {
    if (store_.contains_blob(hint.digest)) continue;
    const auto envelope = sender.send_envelope(hint.digest);
    if (!envelope) continue;
    if (accept(*envelope, BlobSource::Prewarm)) ++accepted;
    // A rejected pre-warm pull stays missing: the next gossip round (or
    // a lazy pull) recovers it.
  }
  return accepted;
}

PeerStats DistributionPeer::stats() const {
  PeerStats stats;
  stats.blobs_in = blobs_in_.load(std::memory_order_relaxed);
  stats.bytes_in = bytes_in_.load(std::memory_order_relaxed);
  stats.blobs_out = blobs_out_.load(std::memory_order_relaxed);
  stats.bytes_out = bytes_out_.load(std::memory_order_relaxed);
  stats.pushed_in = pushed_in_.load(std::memory_order_relaxed);
  stats.prewarm_fetches = prewarm_fetches_.load(std::memory_order_relaxed);
  stats.lazy_fetches = lazy_fetches_.load(std::memory_order_relaxed);
  stats.verify_rejects = verify_rejects_.load(std::memory_order_relaxed);
  return stats;
}

// ---- Remote cache tiers ---------------------------------------------------

std::shared_ptr<const DeployedApp> SpecDistributionTier::load(
    const SpecKey& key) {
  peer_.ensure_local(kSpecArtifactKind, key.to_string());
  return local_.load(key);
}

void SpecDistributionTier::store(const SpecKey& key, const DeployedApp& app) {
  local_.store(key, app);
  peer_.announce(kSpecArtifactKind, key.to_string());
}

std::shared_ptr<const minicc::MachineModule> TuDistributionTier::load(
    const minicc::TuKey& key) {
  peer_.ensure_local(kTuArtifactKind, key.to_string());
  return local_.load(key);
}

void TuDistributionTier::store(const minicc::TuKey& key,
                               const minicc::MachineModule& machine) {
  // Deliberately no announce: TU blobs are build intermediates. Gossiping
  // them would replicate the whole store ring-wide — exactly the naive
  // full-replication cost the protocol exists to avoid. A peer that
  // needs a TU (new specialization sharing layers) lazy-pulls it, and
  // delta pushes still dedup TUs at blob granularity.
  local_.store(key, machine);
}

}  // namespace xaas::service
