#include "service/deploy_scheduler.hpp"

#include "common/hashing.hpp"
#include "service/build_farm.hpp"
#include "service/distribution.hpp"
#include "service/fault.hpp"
#include "vm/decoded.hpp"

namespace xaas::service {

DeployScheduler::DeployScheduler(ShardedRegistry& registry,
                                 DeploySchedulerOptions options)
    : registry_(registry),
      options_(options),
      cache_(options.cache_shards),
      pool_(options.threads) {
  attach_artifact_store();
}

DeployScheduler::DeployScheduler(ShardedRegistry& registry, BuildFarm& farm,
                                 DeploySchedulerOptions options)
    : registry_(registry),
      options_(options),
      cache_(options.cache_shards),
      farm_(&farm),
      pool_(options.threads) {
  attach_artifact_store();
}

void DeployScheduler::attach_artifact_store() {
  if (options_.distribution) {
    // Remote-registry level under the disk tier: the single-flight
    // leader pulls from ring peers before paying a lowering.
    spec_tier_ = std::make_unique<SpecDistributionTier>(*options_.distribution,
                                                        options_.predecode);
  } else if (options_.artifact_store) {
    spec_tier_ = std::make_unique<SpecArtifactTier>(*options_.artifact_store,
                                                    options_.predecode);
  } else {
    return;
  }
  cache_.set_disk_tier(spec_tier_.get());
}

vm::RunResult FleetDeployResult::run(vm::Workload& workload,
                                     int threads) const {
  vm::RunResult failed;
  if (!app) {
    failed.error = "deployment has no program: " + error;
    return failed;
  }
  return app->run_on(node, workload, threads);
}

FleetDeployResult DeployScheduler::deploy(const FleetDeployRequest& request) {
  FleetDeployResult result;
  result.node_name = request.node.name;
  result.node = request.node;

  const auto digest = registry_.resolve(request.image_reference);
  if (!digest) {
    result.code = ErrorCode::NotFound;
    result.error = "image not found in registry: " + request.image_reference;
    return result;
  }
  const auto image = registry_.pull(*digest);  // shared, no layer copy

  const auto manifest = manifest_for(*digest, *image);
  const IrDeployPlan plan = plan_ir_deploy(*manifest, request.node,
                                           request.options);
  if (!plan.ok) {
    // Plan failures are deterministic (bad selection, march beyond the
    // node): not transient, retrying cannot help.
    result.code = ErrorCode::DeployFailed;
    result.error = plan.error;
    return result;
  }
  result.configuration = plan.configuration;

  SpecKey key;
  key.digest = *digest;
  key.selections = common::canonical_selections(request.options.selections);
  key.target = plan.target;

  const auto app = cache_.get_or_deploy(
      key,
      [&]() -> std::shared_ptr<const DeployedApp> {
        // Injected lowering failure: the elected deployer fails; the
        // cache never retains it (failed lowerings are not cached), so
        // the gateway's retry elects a fresh deployer.
        if (XAAS_FAULT_POINT(fault::kIrLower, key.digest)) {
          auto failed = std::make_shared<DeployedApp>();
          failed->error = "injected IR lowering fault for " + key.digest;
          return failed;
        }
        auto deployed = std::make_shared<DeployedApp>(
            deploy_ir_container(*image, request.node, request.options));
        // The cached deployment is shared by every node whose plan
        // resolves to this key, so it must not remember the node that
        // happened to deploy first: DeployedApp::run() on a cleared name
        // fails loudly instead of silently simulating the wrong node
        // (fleet callers run through FleetDeployResult::run / run_on).
        deployed->node_name.clear();
        if (deployed->ok && options_.predecode) {
          // Decode once here; every executor on every node of the fleet
          // reuses this DecodedProgram.
          deployed->decoded = std::make_shared<const vm::DecodedProgram>(
              vm::DecodedProgram::build(deployed->program));
        }
        return deployed;
      },
      &result.cache_hit);

  if (!app) {
    result.code = ErrorCode::DeployFailed;
    result.transient = true;  // the elected deployer threw; not cached
    result.error = "deployment failed";
    return result;
  }
  result.app = app;
  result.ok = app->ok;
  if (!app->ok) {
    // The deployer (lowering or the infrastructure under it) failed; the
    // failed entry was not cached, so a retry elects a fresh deployer.
    result.code = ErrorCode::DeployFailed;
    result.transient = true;
    result.error = app->error;
  }
  return result;
}

std::shared_ptr<const IrImageManifest> DeployScheduler::manifest_for(
    const std::string& digest, const container::Image& image) {
  {
    std::lock_guard lock(manifests_mutex_);
    const auto it = manifests_.find(digest);
    if (it != manifests_.end()) return it->second;
  }
  // Parse outside the lock; concurrent first requests may both parse,
  // the map keeps whichever lands first (they are identical by digest).
  auto parsed =
      std::make_shared<const IrImageManifest>(read_ir_image_manifest(image));
  std::lock_guard lock(manifests_mutex_);
  return manifests_.emplace(digest, std::move(parsed)).first->second;
}

FleetDeployResult DeployScheduler::deploy(const MixedDeployRequest& request) {
  const auto digest = registry_.resolve(request.image_reference);
  if (!digest) {
    FleetDeployResult result;
    result.node_name = request.node.name;
    result.node = request.node;
    result.code = ErrorCode::NotFound;
    result.error = "image not found in registry: " + request.image_reference;
    return result;
  }
  const auto kind =
      registry_.annotation(*digest, container::kAnnotationKind);
  if (kind && *kind == "source") {
    if (!farm_) {
      FleetDeployResult result;
      result.node_name = request.node.name;
      result.node = request.node;
      result.code = ErrorCode::DeployFailed;
      result.error = "source image " + request.image_reference +
                     " requires a build farm (none attached)";
      return result;
    }
    SourceDeployRequest source;
    source.node = request.node;
    // Forward the digest, not the tag: the inner deploy resolves again,
    // and a concurrent retag between the two resolves must not flip the
    // request onto the wrong path (it also spares a tag lookup).
    source.image_reference = *digest;
    source.options.selections = request.selections;
    source.options.march = request.march;
    source.options.opt_level = request.opt_level;
    source.options.auto_specialize = request.auto_specialize;
    // Synchronous path: this scheduler's pool already carries the
    // fan-out; the farm contributes only its caches.
    return farm_->deploy(source);
  }
  FleetDeployRequest ir;
  ir.node = request.node;
  ir.image_reference = *digest;  // same retag race as the source path
  ir.options.selections = request.selections;
  ir.options.march = request.march;
  ir.options.opt_level = request.opt_level;
  return deploy(ir);
}

std::future<FleetDeployResult> DeployScheduler::submit(
    MixedDeployRequest request) {
  return detail::enqueue_deploy(
      pool_,
      [this, request = std::move(request)] { return deploy(request); });
}

std::vector<FleetDeployResult> DeployScheduler::deploy_batch(
    std::vector<MixedDeployRequest> requests) {
  std::vector<std::future<FleetDeployResult>> futures;
  futures.reserve(requests.size());
  for (auto& request : requests) {
    futures.push_back(submit(std::move(request)));
  }
  return detail::collect_deploys(std::move(futures));
}

std::future<FleetDeployResult> DeployScheduler::submit(
    FleetDeployRequest request) {
  return detail::enqueue_deploy(
      pool_,
      [this, request = std::move(request)] { return deploy(request); });
}

std::vector<FleetDeployResult> DeployScheduler::deploy_batch(
    std::vector<FleetDeployRequest> requests) {
  std::vector<std::future<FleetDeployResult>> futures;
  futures.reserve(requests.size());
  for (auto& request : requests) {
    futures.push_back(submit(std::move(request)));
  }
  return detail::collect_deploys(std::move(futures));
}

}  // namespace xaas::service
