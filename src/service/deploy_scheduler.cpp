#include "service/deploy_scheduler.hpp"

#include "common/hashing.hpp"
#include "vm/decoded.hpp"

namespace xaas::service {

DeployScheduler::DeployScheduler(ShardedRegistry& registry,
                                 DeploySchedulerOptions options)
    : registry_(registry),
      options_(options),
      cache_(options.cache_shards),
      pool_(options.threads) {}

vm::RunResult FleetDeployResult::run(vm::Workload& workload,
                                     int threads) const {
  vm::RunResult failed;
  if (!app) {
    failed.error = "deployment has no program: " + error;
    return failed;
  }
  return app->run_on(node, workload, threads);
}

FleetDeployResult DeployScheduler::deploy(const FleetDeployRequest& request) {
  FleetDeployResult result;
  result.node_name = request.node.name;
  result.node = request.node;

  const auto digest = registry_.resolve(request.image_reference);
  if (!digest) {
    result.error = "image not found in registry: " + request.image_reference;
    return result;
  }
  const auto image = registry_.pull(*digest);  // shared, no layer copy

  const auto manifest = manifest_for(*digest, *image);
  const IrDeployPlan plan = plan_ir_deploy(*manifest, request.node,
                                           request.options);
  if (!plan.ok) {
    result.error = plan.error;
    return result;
  }
  result.configuration = plan.configuration;

  SpecKey key;
  key.digest = *digest;
  key.selections = common::canonical_selections(request.options.selections);
  key.target = plan.target;

  const auto app = cache_.get_or_deploy(
      key,
      [&]() -> std::shared_ptr<const DeployedApp> {
        auto deployed = std::make_shared<DeployedApp>(
            deploy_ir_container(*image, request.node, request.options));
        // The cached deployment is shared by every node whose plan
        // resolves to this key, so it must not remember the node that
        // happened to deploy first: DeployedApp::run() on a cleared name
        // fails loudly instead of silently simulating the wrong node
        // (fleet callers run through FleetDeployResult::run / run_on).
        deployed->node_name.clear();
        if (deployed->ok && options_.predecode) {
          // Decode once here; every executor on every node of the fleet
          // reuses this DecodedProgram.
          deployed->decoded = std::make_shared<const vm::DecodedProgram>(
              vm::DecodedProgram::build(deployed->program));
        }
        return deployed;
      },
      &result.cache_hit);

  if (!app) {
    result.error = "deployment failed";
    return result;
  }
  result.app = app;
  result.ok = app->ok;
  if (!app->ok) result.error = app->error;
  return result;
}

std::shared_ptr<const IrImageManifest> DeployScheduler::manifest_for(
    const std::string& digest, const container::Image& image) {
  {
    std::lock_guard lock(manifests_mutex_);
    const auto it = manifests_.find(digest);
    if (it != manifests_.end()) return it->second;
  }
  // Parse outside the lock; concurrent first requests may both parse,
  // the map keeps whichever lands first (they are identical by digest).
  auto parsed =
      std::make_shared<const IrImageManifest>(read_ir_image_manifest(image));
  std::lock_guard lock(manifests_mutex_);
  return manifests_.emplace(digest, std::move(parsed)).first->second;
}

std::future<FleetDeployResult> DeployScheduler::submit(
    FleetDeployRequest request) {
  auto promise = std::make_shared<std::promise<FleetDeployResult>>();
  auto future = promise->get_future();
  pool_.submit([this, promise, request = std::move(request)]() {
    try {
      promise->set_value(deploy(request));
    } catch (...) {
      promise->set_exception(std::current_exception());
    }
  });
  return future;
}

std::vector<FleetDeployResult> DeployScheduler::deploy_batch(
    std::vector<FleetDeployRequest> requests) {
  std::vector<std::future<FleetDeployResult>> futures;
  futures.reserve(requests.size());
  for (auto& request : requests) {
    futures.push_back(submit(std::move(request)));
  }
  std::vector<FleetDeployResult> results;
  results.reserve(futures.size());
  for (auto& future : futures) results.push_back(future.get());
  return results;
}

}  // namespace xaas::service
