// Deterministic fault injection for the serving plane.
//
// A production fleet fails in ways the happy path never exercises: nodes
// crash mid-run, disks flip bits, builds flake. The reliability layer
// (deadlines, retries, circuit breakers, load shedding — reliability.hpp)
// only earns trust if those failures can be *reproduced*, so this
// framework makes every injected fault a pure function of a seed:
//
//   fires(site, key)  =  hash(seed, site, key, n) < probability(site)
//
// where `n` is the number of times this (site, key) pair has been
// evaluated before. Two plans with the same seed and configuration
// produce identical per-key fault schedules regardless of thread
// interleaving — the k-th build of one TU fails (or not) identically in
// every run — which is what lets the chaos bench demand bit-identical
// results and exactly consistent telemetry under faults. Because the
// schedule is per-evaluation, a fault is *flaky*, not permanent: the
// retry that re-evaluates the same key draws the next index and can
// succeed.
//
// Sites are string constants named after the layer they perturb
// (node.crash, build.tu, store.corrupt, ...). Production code marks a
// site with XAAS_FAULT_POINT(site, key); with no plan installed the
// macro is one acquire load of a null pointer and a predictable branch —
// nothing else — so the hooks stay compiled into release builds at zero
// measurable cost (the BM_GatewayServing regression gate enforces < 2%).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

namespace xaas::service::fault {

// Named fault sites wired through the serving plane.
inline constexpr std::string_view kNodeCrash = "node.crash";    // run fails
inline constexpr std::string_view kNodeSlow = "node.slow";      // run stalls
inline constexpr std::string_view kTuBuild = "build.tu";        // TU compile fails
inline constexpr std::string_view kIrLower = "deploy.lower";    // IR lowering fails
inline constexpr std::string_view kStoreRead = "store.read";    // read I/O error
inline constexpr std::string_view kStoreWrite = "store.write";  // write I/O error
inline constexpr std::string_view kStoreCorrupt = "store.corrupt";  // bit flip
inline constexpr std::string_view kDistTransfer = "dist.transfer";  // in-flight bit flip

/// A seeded schedule of faults.
///
/// Thread-safety: configuration (set_probability / crash_node /
/// set_slowdown_seconds / set_observer) must finish before the plan is
/// installed; the query side (fires / node_crashed / maybe_corrupt) and
/// the accounting accessors are safe from any thread.
/// Ownership: owned by the test/bench that builds it. The plan must stay
/// alive (and, if an observer touches other objects, those too) until
/// after FaultInjector::install(nullptr) — ScopedFaultPlan handles the
/// uninstall; declare the plan before the objects its observer uses die.
class FaultPlan {
public:
  /// Called once per injected fault with the site name (e.g. the Gateway
  /// mirrors these into "fault.<site>" telemetry counters).
  using Observer = std::function<void(std::string_view site)>;

  explicit FaultPlan(std::uint64_t seed = 0) : seed_(seed) {}

  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  // ---- Configuration (before install) ----
  /// Probability in [0, 1] that an evaluation of `site` fires.
  void set_probability(std::string_view site, double probability);
  /// Mark a node as crashed: every run attempt routed to it fails.
  void crash_node(std::string node_name);
  /// Stall duration applied where kNodeSlow fires.
  void set_slowdown_seconds(double seconds) { slowdown_seconds_ = seconds; }
  void set_observer(Observer observer) { observer_ = std::move(observer); }

  // ---- Queries (hot path, via the XAAS_FAULT_POINT macro) ----
  /// Whether the fault at `site` fires for this evaluation of `key`.
  /// Deterministic: the n-th evaluation of one (site, key) pair fires
  /// identically for equal seeds, independent of other keys and threads.
  bool fires(std::string_view site, std::string_view key);
  /// Whether `node_name` is in the crashed set; counts an injected
  /// kNodeCrash fault per positive query (one per run attempt routed
  /// there).
  bool node_crashed(const std::string& node_name);
  /// Flip one deterministic byte of `bytes` when `site` fires; returns
  /// whether corruption was injected.
  bool maybe_corrupt(std::string_view site, std::string_view key,
                     std::string& bytes);
  double slowdown_seconds() const { return slowdown_seconds_; }

  // ---- Accounting ----
  std::uint64_t seed() const { return seed_; }
  /// Faults injected at `site` so far.
  std::uint64_t injected(std::string_view site) const;
  std::uint64_t total_injected() const;
  std::map<std::string, std::uint64_t> injected_by_site() const;

private:
  void record_injection(std::string_view site);

  const std::uint64_t seed_;
  double slowdown_seconds_ = 0.0;
  Observer observer_;  // set once before install; called outside mutex_
  // Immutable after configuration; read lock-free on the query side.
  std::map<std::string, double, std::less<>> probabilities_;
  std::unordered_set<std::string> crashed_nodes_;

  mutable std::mutex mutex_;
  /// Evaluations per (site '\x1f' key): the per-key schedule index.
  std::unordered_map<std::string, std::uint64_t> hits_;
  std::map<std::string, std::uint64_t> injected_;
};

/// Process-global plan registration. One plan at a time; production code
/// reads active() through the site helpers below.
class FaultInjector {
public:
  static void install(FaultPlan* plan) {
    active_.store(plan, std::memory_order_release);
  }
  static FaultPlan* active() {
    return active_.load(std::memory_order_acquire);
  }

private:
  static std::atomic<FaultPlan*> active_;
};

/// RAII install/uninstall for tests and benches. Declare the plan (and
/// this guard) before the services under test, so the plan outlives them.
class ScopedFaultPlan {
public:
  explicit ScopedFaultPlan(FaultPlan& plan) { FaultInjector::install(&plan); }
  ~ScopedFaultPlan() { FaultInjector::install(nullptr); }
  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;
};

/// Hook bodies behind XAAS_FAULT_POINT: no plan installed (the normal
/// case) costs one atomic load and a predictable branch.
inline bool fires(std::string_view site, std::string_view key) {
  FaultPlan* plan = FaultInjector::active();
  if (plan == nullptr) return false;
  return plan->fires(site, key);
}

inline bool corrupts(std::string_view site, std::string_view key,
                     std::string& bytes) {
  FaultPlan* plan = FaultInjector::active();
  if (plan == nullptr) return false;
  return plan->maybe_corrupt(site, key, bytes);
}

}  // namespace xaas::service::fault

/// Named fault site in production code: evaluates to whether the fault
/// fires. Zero overhead when no plan is installed.
#define XAAS_FAULT_POINT(site, key) \
  (::xaas::service::fault::fires((site), (key)))
