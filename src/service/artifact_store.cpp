#include "service/artifact_store.hpp"

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <utility>
#include <vector>

#include "common/sha256.hpp"
#include "service/fault.hpp"
#include "vm/decoded.hpp"

namespace xaas::service {

namespace fs = std::filesystem;
using common::Json;

namespace {

constexpr int kBlobVersion = 1;
constexpr const char* kIndexName = "index.json";
constexpr const char* kObjectsDir = "objects";

/// Read a whole file as bytes; nullopt when absent/unreadable.
std::optional<std::string> read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::string out;
  in.seekg(0, std::ios::end);
  const auto size = in.tellg();
  if (size < 0) return std::nullopt;
  out.resize(static_cast<std::size_t>(size));
  in.seekg(0, std::ios::beg);
  in.read(out.data(), static_cast<std::streamsize>(out.size()));
  if (!in) return std::nullopt;
  return out;
}

/// Atomic publish: write to a unique sibling temp file, then rename.
/// Readers (this process or another sharing the directory) either see
/// the old complete file or the new complete file, never a partial one.
bool write_file_atomic(const fs::path& path, std::string_view contents,
                       std::uint64_t unique_seq) {
  std::error_code ec;
  fs::create_directories(path.parent_path(), ec);
  fs::path temp = path.parent_path() /
                  (".tmp-" + std::to_string(::getpid()) + "-" +
                   std::to_string(unique_seq) + "-" +
                   path.filename().string());
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
    out.flush();
    if (!out) {
      out.close();
      fs::remove(temp, ec);
      return false;
    }
  }
  fs::rename(temp, path, ec);
  if (ec) {
    fs::remove(temp, ec);
    return false;
  }
  return true;
}

}  // namespace

std::string ArtifactStore::blob_digest(std::string_view kind,
                                       std::string_view key) {
  common::Sha256 hasher;
  hasher.update(kind);
  hasher.update("\x1f", 1);
  hasher.update(key);
  return hasher.hex_digest();
}

std::string ArtifactStore::blob_path(const std::string& digest) const {
  // Two-level fanout (OCI-style): objects/ab/cd/<digest> keeps any one
  // directory small even for millions of artifacts.
  std::string path = options_.dir;
  path += '/';
  path += kObjectsDir;
  path += '/';
  path += digest.substr(0, 2);
  path += '/';
  path += digest.substr(2, 2);
  path += '/';
  path += digest;
  return path;
}

ArtifactStore::ArtifactStore(ArtifactStoreOptions options)
    : options_(std::move(options)) {
  std::error_code ec;
  fs::create_directories(fs::path(options_.dir) / kObjectsDir, ec);
  std::lock_guard lock(mutex_);
  recover_locked();
}

ArtifactStore::~ArtifactStore() { flush_index(); }

void ArtifactStore::recover_locked() {
  // The index is an acceleration structure, never the source of truth:
  // LRU ordering comes from it, existence and sizes come from the scan.
  // A store opened after an unclean shutdown (stale or missing index)
  // therefore recovers every blob that finished its atomic rename.
  std::map<std::string, std::uint64_t> index_last_used;
  if (const auto text = read_file(fs::path(options_.dir) / kIndexName)) {
    try {
      const Json doc = Json::parse(*text);
      clock_ = static_cast<std::uint64_t>(doc.get_int("clock", 0));
      if (const Json* entries = doc.find("entries")) {
        for (const auto& entry : entries->items()) {
          index_last_used[entry.get_string("digest")] =
              static_cast<std::uint64_t>(entry.get_int("last_used", 0));
        }
      }
    } catch (const common::JsonError&) {
      // Corrupt index: fall back to scan order (last_used = 0).
    }
  }

  blobs_.clear();
  total_bytes_ = 0;
  std::error_code ec;
  const fs::path objects = fs::path(options_.dir) / kObjectsDir;
  for (fs::recursive_directory_iterator it(objects, ec), end;
       !ec && it != end; it.increment(ec)) {
    if (!it->is_regular_file(ec)) continue;
    const std::string name = it->path().filename().string();
    if (name.rfind(".tmp-", 0) == 0) {
      // Leftover temp file from a crashed writer: never published.
      fs::remove(it->path(), ec);
      continue;
    }
    BlobInfo info;
    info.size = static_cast<std::uint64_t>(it->file_size(ec));
    const auto found = index_last_used.find(name);
    if (found != index_last_used.end()) info.last_used = found->second;
    clock_ = std::max(clock_, info.last_used);
    total_bytes_ += info.size;
    blobs_[name] = info;
  }
}

void ArtifactStore::write_index_locked() {
  puts_since_index_flush_ = 0;
  Json doc = Json::object();
  doc["v"] = kBlobVersion;
  doc["clock"] = static_cast<std::int64_t>(clock_);
  Json entries = Json::array();
  for (const auto& [digest, info] : blobs_) {
    Json entry = Json::object();
    entry["digest"] = digest;
    entry["size"] = static_cast<std::int64_t>(info.size);
    entry["last_used"] = static_cast<std::int64_t>(info.last_used);
    entries.push_back(std::move(entry));
  }
  doc["entries"] = std::move(entries);
  write_file_atomic(fs::path(options_.dir) / kIndexName, doc.dump(), ++temp_seq_);
}

void ArtifactStore::flush_index() {
  std::lock_guard lock(mutex_);
  write_index_locked();
}

void ArtifactStore::notify(Event::Kind kind, std::uint64_t bytes) const {
  if (!observer_) return;
  Event event;
  event.kind = kind;
  event.bytes = bytes;
  observer_(event);
}

void ArtifactStore::remove_blob_locked(const std::string& digest,
                                       Event::Kind why) {
  std::error_code ec;
  fs::remove(blob_path(digest), ec);
  const auto it = blobs_.find(digest);
  if (it != blobs_.end()) {
    total_bytes_ -= std::min(total_bytes_, it->second.size);
    blobs_.erase(it);
  }
  if (why == Event::Kind::Eviction) evictions_.fetch_add(1);
  if (why == Event::Kind::VerifyFailure) verify_failures_.fetch_add(1);
}

std::size_t ArtifactStore::evict_to_budget_locked(
    const std::string& keep_digest) {
  std::size_t evicted = 0;
  if (options_.max_bytes == 0) return evicted;
  while (total_bytes_ > options_.max_bytes) {
    const std::map<std::string, BlobInfo>::iterator end = blobs_.end();
    auto victim = end;
    for (auto it = blobs_.begin(); it != end; ++it) {
      if (it->first == keep_digest) continue;
      if (victim == end || it->second.last_used < victim->second.last_used) {
        victim = it;
      }
    }
    // The just-written blob is never its own victim: a budget smaller
    // than one artifact still keeps that artifact (evicting it would
    // make the store a no-op that pretends to persist).
    if (victim == end) break;
    remove_blob_locked(victim->first, Event::Kind::Eviction);
    ++evicted;
  }
  return evicted;
}

bool ArtifactStore::publish_blob(const std::string& digest,
                                 std::string_view blob) {
  std::size_t evicted = 0;
  {
    std::lock_guard lock(mutex_);
    // Injected write I/O error first: the blob is never published, and
    // the caller degrades exactly as on a real failed write (the store
    // is simply not warm for this key).
    if (XAAS_FAULT_POINT(fault::kStoreWrite, digest) ||
        !write_file_atomic(blob_path(digest), blob, ++temp_seq_)) {
      return false;
    }
    auto& info = blobs_[digest];
    total_bytes_ -= std::min<std::uint64_t>(total_bytes_, info.size);
    info.size = blob.size();
    info.last_used = ++clock_;
    total_bytes_ += info.size;
    evicted = evict_to_budget_locked(digest);
    // The index is only an LRU accelerator (blobs recover by scan), so
    // it need not be rewritten per put — O(entries) serialization on
    // every write would make a cold N-artifact build O(N^2). Flush on
    // eviction (budget pressure), periodically, and at destruction.
    if (evicted > 0 || ++puts_since_index_flush_ >= kIndexFlushInterval) {
      write_index_locked();
    }
  }
  writes_.fetch_add(1);
  notify(Event::Kind::Write, blob.size());
  for (std::size_t i = 0; i < evicted; ++i) notify(Event::Kind::Eviction);
  return true;
}

bool ArtifactStore::put(std::string_view kind, std::string_view key,
                        std::string_view payload) {
  const std::string digest = blob_digest(kind, key);

  Json header = Json::object();
  header["v"] = kBlobVersion;
  header["kind"] = kind;
  header["key"] = key;
  header["payload_sha256"] = common::sha256_hex(payload);
  header["payload_size"] = static_cast<std::int64_t>(payload.size());
  std::string blob = header.dump();
  blob.push_back('\n');
  blob.append(payload);
  return publish_blob(digest, blob);
}

std::optional<std::string> ArtifactStore::get(std::string_view kind,
                                              std::string_view key) {
  const std::string digest = blob_digest(kind, key);
  bool corrupt = false;
  std::optional<std::string> payload;
  {
    std::lock_guard lock(mutex_);
    // Always probe the directory, even when the digest is absent from
    // the in-memory accounting: another store (or process) sharing the
    // directory may have published the blob after this store opened.
    auto blob = read_file(blob_path(digest));
    // Injected transient read I/O error: report a miss, but leave the
    // accounting alone — the blob is still on disk and still valid, so
    // this must not look like a sibling-store eviction.
    const bool injected_read_error =
        blob.has_value() && XAAS_FAULT_POINT(fault::kStoreRead, digest);
    if (injected_read_error) blob.reset();
    if (!blob) {
      // Accounted but unreadable = evicted/removed underneath us by a
      // sibling store; drop the stale accounting entry.
      if (!injected_read_error) {
        const auto it = blobs_.find(digest);
        if (it != blobs_.end()) {
          total_bytes_ -= std::min(total_bytes_, it->second.size);
          blobs_.erase(it);
        }
      }
    } else {
      // Injected on-disk corruption: flip one byte of the blob we just
      // read, exactly as a decaying disk would, and let the verification
      // below catch it.
      fault::corrupts(fault::kStoreCorrupt, digest, *blob);
      const std::size_t newline = blob->find('\n');
      std::string verify_error;
      if (newline == std::string::npos) {
        verify_error = "no header line";
      } else {
        try {
          const Json header = Json::parse(std::string_view(*blob).substr(0, newline));
          const std::string_view body =
              std::string_view(*blob).substr(newline + 1);
          if (header.get_string("kind") != kind ||
              header.get_string("key") != key) {
            verify_error = "header key mismatch";
          } else if (header.get_int("payload_size", -1) !=
                     static_cast<std::int64_t>(body.size())) {
            verify_error = "payload size mismatch";
          } else if (header.get_string("payload_sha256") !=
                     common::sha256_hex(body)) {
            verify_error = "payload sha256 mismatch";
          } else {
            payload = std::string(body);
          }
        } catch (const common::JsonError&) {
          verify_error = "malformed header";
        }
      }
      if (payload) {
        // Adopt/refresh the accounting entry (a sibling store may have
        // written or rewritten this blob after we opened).
        auto& info = blobs_[digest];
        total_bytes_ -= std::min(total_bytes_, info.size);
        info.size = blob->size();
        total_bytes_ += info.size;
        info.last_used = ++clock_;
      } else {
        // Corrupt blob: delete it so the next request recompiles into a
        // fresh one. Corruption can cost a rebuild, never a wrong image.
        corrupt = true;
        (void)verify_error;
        remove_blob_locked(digest, Event::Kind::VerifyFailure);
        // Evict from the persisted index synchronously too (as
        // note_corrupt does): a store recovered from a stale index must
        // not resurrect the dead entry's LRU record, and entry_count /
        // total_bytes must reflect the deletion immediately.
        write_index_locked();
      }
    }
  }
  if (corrupt) notify(Event::Kind::VerifyFailure);
  if (payload) {
    disk_hits_.fetch_add(1);
    notify(Event::Kind::DiskHit, payload->size());
  } else {
    disk_misses_.fetch_add(1);
    notify(Event::Kind::DiskMiss);
  }
  return payload;
}

void ArtifactStore::note_corrupt(std::string_view kind, std::string_view key) {
  {
    std::lock_guard lock(mutex_);
    remove_blob_locked(blob_digest(kind, key), Event::Kind::VerifyFailure);
    write_index_locked();
  }
  notify(Event::Kind::VerifyFailure);
}

// ---- Blob-level registry surface -----------------------------------------

bool ArtifactStore::verify_blob(const std::string& digest,
                                std::string_view blob) {
  const std::size_t newline = blob.find('\n');
  if (newline == std::string_view::npos) return false;
  try {
    const Json header = Json::parse(blob.substr(0, newline));
    const std::string_view body = blob.substr(newline + 1);
    // The header echoes the address inputs: a blob grafted onto another
    // digest (or corrupted anywhere) fails one of these three checks.
    if (blob_digest(header.get_string("kind"), header.get_string("key")) !=
        digest) {
      return false;
    }
    if (header.get_int("payload_size", -1) !=
        static_cast<std::int64_t>(body.size())) {
      return false;
    }
    return header.get_string("payload_sha256") == common::sha256_hex(body);
  } catch (const common::JsonError&) {
    return false;
  }
}

std::vector<ArtifactStore::BlobRef> ArtifactStore::enumerate_blobs() const {
  std::lock_guard lock(mutex_);
  std::vector<BlobRef> refs;
  refs.reserve(blobs_.size());
  for (const auto& [digest, info] : blobs_) {
    refs.push_back({digest, info.size});
  }
  return refs;  // digest-sorted: blobs_ is an ordered map
}

bool ArtifactStore::contains_blob(const std::string& digest) const {
  std::lock_guard lock(mutex_);
  if (blobs_.count(digest) != 0) return true;
  std::error_code ec;
  return fs::exists(blob_path(digest), ec);
}

std::uint64_t ArtifactStore::blob_bytes(const std::string& digest) const {
  std::lock_guard lock(mutex_);
  const auto it = blobs_.find(digest);
  return it == blobs_.end() ? 0 : it->second.size;
}

std::optional<std::string> ArtifactStore::read_blob(const std::string& digest) {
  bool corrupt = false;
  std::optional<std::string> blob;
  {
    std::lock_guard lock(mutex_);
    blob = read_file(blob_path(digest));
    if (!blob) {
      // Evicted/removed underneath us by a sibling store: drop the
      // stale accounting entry, as get() does.
      const auto it = blobs_.find(digest);
      if (it != blobs_.end()) {
        total_bytes_ -= std::min(total_bytes_, it->second.size);
        blobs_.erase(it);
      }
    } else {
      fault::corrupts(fault::kStoreCorrupt, digest, *blob);
      if (verify_blob(digest, *blob)) {
        auto& info = blobs_[digest];
        total_bytes_ -= std::min(total_bytes_, info.size);
        info.size = blob->size();
        total_bytes_ += info.size;
        info.last_used = ++clock_;
      } else {
        // Same discipline as get(): a corrupt blob is deleted — from
        // disk, accounting, and the persisted index — and never served.
        corrupt = true;
        blob.reset();
        remove_blob_locked(digest, Event::Kind::VerifyFailure);
        write_index_locked();
      }
    }
  }
  if (corrupt) notify(Event::Kind::VerifyFailure);
  return blob;
}

bool ArtifactStore::adopt_blob(const std::string& digest,
                               std::string_view blob) {
  if (!verify_blob(digest, blob)) return false;
  return publish_blob(digest, blob);
}

std::size_t ArtifactStore::entry_count() const {
  std::lock_guard lock(mutex_);
  return blobs_.size();
}

std::uint64_t ArtifactStore::total_bytes() const {
  std::lock_guard lock(mutex_);
  return total_bytes_;
}

// ---- Artifact serialization ----------------------------------------------

namespace {

Json target_to_json(const minicc::TargetSpec& target) {
  Json doc = Json::object();
  doc["visa"] = std::string(isa::to_string(target.visa));
  doc["openmp"] = target.openmp;
  doc["opt_level"] = target.opt_level;
  return doc;
}

bool target_from_json(const Json& doc, minicc::TargetSpec* target,
                      std::string* error) {
  const auto visa = isa::vector_isa_from_string(doc.get_string("visa", "?"));
  if (!visa) {
    *error = "unknown vector ISA '" + doc.get_string("visa") + "'";
    return false;
  }
  target->visa = *visa;
  target->openmp = doc.get_bool("openmp");
  target->opt_level = static_cast<int>(doc.get_int("opt_level", 2));
  return true;
}

}  // namespace

common::Json machine_module_to_json(const minicc::MachineModule& machine) {
  Json doc = Json::object();
  // The textual IR is the lossless serialization the paper's containers
  // store in layers (§4.2) — reused here verbatim.
  doc["ir"] = minicc::ir::print(machine.code);
  doc["target"] = target_to_json(machine.target);
  doc["fused_fma"] = machine.fused_fma;
  doc["vectorized_loops"] = machine.vectorized_loops;
  return doc;
}

std::optional<minicc::MachineModule> machine_module_from_json(
    const common::Json& doc, std::string* error) {
  const Json* ir_text = doc.find("ir");
  const Json* target_doc = doc.find("target");
  if (!ir_text || !ir_text->is_string() || !target_doc) {
    *error = "machine module document missing ir/target";
    return std::nullopt;
  }
  minicc::MachineModule machine;
  if (!target_from_json(*target_doc, &machine.target, error)) {
    return std::nullopt;
  }
  auto parsed = minicc::ir::parse_ir(ir_text->as_string());
  if (!parsed.ok) {
    *error = "IR parse failed: " + parsed.error;
    return std::nullopt;
  }
  machine.code = std::move(parsed.module);
  machine.fused_fma = static_cast<int>(doc.get_int("fused_fma", 0));
  machine.vectorized_loops =
      static_cast<int>(doc.get_int("vectorized_loops", 0));
  return machine;
}

common::Json deployed_app_to_json(const DeployedApp& app) {
  Json doc = Json::object();
  doc["image"] = app.image.to_json();
  doc["image_digest"] =
      app.image_digest.empty() ? app.image.digest() : app.image_digest;
  Json modules = Json::array();
  for (const auto& machine : app.program.modules()) {
    modules.push_back(machine_module_to_json(machine));
  }
  doc["modules"] = std::move(modules);
  doc["configuration"] = app.configuration.to_json();
  doc["target"] = target_to_json(app.target);
  Json log = Json::array();
  for (const auto& line : app.log) log.push_back(line);
  doc["log"] = std::move(log);
  return doc;
}

std::shared_ptr<const DeployedApp> deployed_app_from_json(
    const common::Json& doc, bool predecode, std::string* error) {
  auto app = std::make_shared<DeployedApp>();
  try {
    const Json* image_doc = doc.find("image");
    const Json* modules_doc = doc.find("modules");
    const Json* config_doc = doc.find("configuration");
    const Json* target_doc = doc.find("target");
    if (!image_doc || !modules_doc || !config_doc || !target_doc) {
      *error = "deployment document missing image/modules/configuration/target";
      return nullptr;
    }
    app->image = container::Image::from_json(*image_doc);
    app->image_digest = app->image.digest();
    // The recorded digest is the content address the caches key on —
    // a reconstruction that hashes differently is corrupt by definition.
    const std::string recorded = doc.get_string("image_digest");
    if (!recorded.empty() && recorded != app->image_digest) {
      *error = "reconstructed image digest mismatch";
      return nullptr;
    }
    std::vector<minicc::MachineModule> modules;
    modules.reserve(modules_doc->items().size());
    for (const auto& entry : modules_doc->items()) {
      auto machine = machine_module_from_json(entry, error);
      if (!machine) return nullptr;
      modules.push_back(std::move(*machine));
    }
    // Re-link in stored order: link is a pure function of the module
    // sequence, so the program is bit-identical to the one persisted.
    std::string link_error;
    app->program = vm::Program::link(std::move(modules), &link_error);
    if (!app->program.ok()) {
      *error = "re-link failed: " + link_error;
      return nullptr;
    }
    app->configuration = buildsys::Configuration::from_json(*config_doc);
    if (!target_from_json(*target_doc, &app->target, error)) return nullptr;
    if (const Json* log = doc.find("log")) {
      for (const auto& line : log->items()) app->log.push_back(line.as_string());
    }
  } catch (const common::JsonError& e) {
    *error = std::string("deployment document malformed: ") + e.what();
    return nullptr;
  }
  if (predecode) {
    app->decoded = std::make_shared<const vm::DecodedProgram>(
        vm::DecodedProgram::build(app->program));
  }
  app->ok = true;
  return app;
}

// ---- Cache tier adapters -------------------------------------------------

std::shared_ptr<const DeployedApp> SpecArtifactTier::load(const SpecKey& key) {
  const std::string composite = key.to_string();
  const auto payload = store_.get(kSpecArtifactKind, composite);
  if (!payload) return nullptr;
  std::string error;
  std::shared_ptr<const DeployedApp> app;
  try {
    app = deployed_app_from_json(Json::parse(*payload), predecode_, &error);
  } catch (const common::JsonError&) {
    app = nullptr;
  }
  if (!app) {
    // Hash-valid payload that no longer deserializes (format drift or a
    // serializer bug): drop it so the next request rebuilds cleanly.
    store_.note_corrupt(kSpecArtifactKind, composite);
    return nullptr;
  }
  return app;
}

void SpecArtifactTier::store(const SpecKey& key, const DeployedApp& app) {
  if (!app.ok) return;
  store_.put(kSpecArtifactKind, key.to_string(), deployed_app_to_json(app).dump());
}

std::shared_ptr<const minicc::MachineModule> TuArtifactTier::load(
    const minicc::TuKey& key) {
  const std::string composite = key.to_string();
  const auto payload = store_.get(kTuArtifactKind, composite);
  if (!payload) return nullptr;
  std::string error;
  std::optional<minicc::MachineModule> machine;
  try {
    machine = machine_module_from_json(Json::parse(*payload), &error);
  } catch (const common::JsonError&) {
    machine = std::nullopt;
  }
  if (!machine) {
    store_.note_corrupt(kTuArtifactKind, composite);
    return nullptr;
  }
  return std::make_shared<const minicc::MachineModule>(std::move(*machine));
}

void TuArtifactTier::store(const minicc::TuKey& key,
                           const minicc::MachineModule& machine) {
  store_.put(kTuArtifactKind, key.to_string(), machine_module_to_json(machine).dump());
}

}  // namespace xaas::service
