#include "service/cluster.hpp"

#include <algorithm>
#include <bit>
#include <chrono>

#include "common/hashing.hpp"

namespace xaas::service {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// SplitMix64 finalizer: decorrelates ring points derived from the same
/// member hash (replica index) and mixes the seed into key hashes.
std::uint64_t mix64(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

// ---- ConsistentHashRing ----------------------------------------------------

ConsistentHashRing::ConsistentHashRing(std::size_t vnodes, std::uint64_t seed)
    : vnodes_(vnodes == 0 ? 1 : vnodes), seed_(seed) {}

std::uint64_t ConsistentHashRing::point(const std::string& member,
                                        std::size_t replica) const {
  return mix64(common::fnv1a_64(member) ^ seed_ ^
               (static_cast<std::uint64_t>(replica) * 0x9e3779b97f4a7c15ULL));
}

void ConsistentHashRing::add(const std::string& member) {
  if (!members_.insert(member).second) return;  // already present
  for (std::size_t r = 0; r < vnodes_; ++r) {
    auto& names = ring_[point(member, r)];
    names.insert(std::upper_bound(names.begin(), names.end(), member), member);
  }
}

void ConsistentHashRing::remove(const std::string& member) {
  if (members_.erase(member) == 0) return;
  for (std::size_t r = 0; r < vnodes_; ++r) {
    const auto it = ring_.find(point(member, r));
    if (it == ring_.end()) continue;
    auto& names = it->second;
    names.erase(std::remove(names.begin(), names.end(), member), names.end());
    if (names.empty()) ring_.erase(it);
  }
}

std::string ConsistentHashRing::lookup(std::string_view key) const {
  if (ring_.empty()) return {};
  const std::uint64_t h = mix64(common::fnv1a_64(key) ^ seed_);
  auto it = ring_.lower_bound(h);
  if (it == ring_.end()) it = ring_.begin();  // wrap
  return it->second.front();
}

// ---- Cluster ---------------------------------------------------------------

std::size_t workload_bytes(const vm::Workload& workload) {
  std::size_t bytes = 64;  // request framing
  for (const auto& [name, buffer] : workload.f64_buffers) {
    bytes += name.size() + 16 + buffer.size() * sizeof(double);
  }
  for (const auto& [name, buffer] : workload.i64_buffers) {
    bytes += name.size() + 16 + buffer.size() * sizeof(long long);
  }
  return bytes;
}

std::string Cluster::request_class_key(const RunRequest& request) {
  std::string key;
  common::key_append(key, request.image_reference);
  common::key_append(key, common::canonical_selections(request.selections));
  common::key_append(key,
                     request.march ? isa::to_string(*request.march) : "auto");
  common::key_append(key, std::to_string(request.opt_level));
  return key;
}

Cluster::Cluster(std::vector<vm::NodeSpec> fleet, ClusterOptions options)
    : options_(std::move(options)),
      ring_(options_.vnodes, options_.seed),
      quotas_(options_.default_quota),
      start_(Clock::now()) {
  if (options_.gateways == 0) options_.gateways = 1;
  if (options_.dispatchers_per_gateway == 0) {
    options_.dispatchers_per_gateway = 1;
  }
  if (options_.max_pending == 0) options_.max_pending = 1;
  for (const auto& [tenant, quota] : options_.tenant_quotas) {
    quotas_.set_quota(tenant, quota);
  }

  requests_ = &metrics_.counter("cluster.requests");
  admitted_ = &metrics_.counter("cluster.admitted");
  rejected_ = &metrics_.counter("cluster.rejected");
  shed_ = &metrics_.counter("cluster.shed");
  quota_denied_ = &metrics_.counter("cluster.quota_denied");
  completed_ = &metrics_.counter("cluster.completed");
  failed_ = &metrics_.counter("cluster.failed");
  stolen_ = &metrics_.counter("cluster.stolen");
  steal_skipped_ = &metrics_.counter("cluster.steal_skipped");
  fills_ = &metrics_.counter("cluster.fills");
  fabric_nanos_ = &metrics_.counter("cluster.fabric_nanos");

  // Registry fabric first: the gateways' peers register on it in shard
  // order, which fixes the gossip ring.
  if (!options_.artifact_root.empty()) {
    DistributionOptions dist_options = options_.distribution;
    dist_options.stack = options_.fabric_stack;
    fabric_ = std::make_unique<DistributionFabric>(std::move(dist_options));
  }

  // Contiguous near-equal fleet slices, one per gateway: the first
  // (fleet % gateways) shards take one extra node.
  const std::size_t gateways = std::min(
      options_.gateways, std::max<std::size_t>(1, fleet.size()));
  GatewayOptions gateway_options = options_.gateway;
  if (gateway_options.worker_threads == 0) {
    gateway_options.worker_threads = options_.dispatchers_per_gateway;
  }
  std::size_t next = 0;
  for (std::size_t g = 0; g < gateways; ++g) {
    auto shard = std::make_unique<Shard>();
    shard->name = "gw" + std::to_string(g);
    if (fabric_) {
      gateway_options.artifact_dir =
          options_.artifact_root + "/" + shard->name;
      gateway_options.distribution = fabric_.get();
      gateway_options.distribution_name = shard->name;
    }
    std::size_t take = fleet.size() / gateways;
    if (g < fleet.size() % gateways) ++take;
    std::vector<vm::NodeSpec> slice;
    slice.reserve(take);
    for (std::size_t i = 0; i < take && next < fleet.size(); ++i) {
      slice.push_back(fleet[next++]);
    }
    shard->gateway = std::make_unique<Gateway>(std::move(slice),
                                               gateway_options);
    shard->served = &metrics_.counter("gateway." + shard->name + ".served");
    shard->stolen = &metrics_.counter("gateway." + shard->name + ".stolen");
    shard->fills = &metrics_.counter("gateway." + shard->name + ".fills");
    shard_by_name_[shard->name] = g;
    ring_.add(shard->name);
    shards_.push_back(std::move(shard));
  }

  dispatchers_.reserve(shards_.size() * options_.dispatchers_per_gateway);
  for (std::size_t g = 0; g < shards_.size(); ++g) {
    for (std::size_t d = 0; d < options_.dispatchers_per_gateway; ++d) {
      dispatchers_.emplace_back([this, g] { dispatcher_loop(g); });
    }
  }
}

Cluster::~Cluster() {
  stop_.store(true, std::memory_order_seq_cst);
  for (auto& shard : shards_) {
    // Empty critical section: serializes with a dispatcher that checked
    // the predicate but has not yet slept (same idiom as ~Gateway).
    std::lock_guard lock(shard->mutex);
  }
  for (auto& shard : shards_) shard->cv.notify_all();
  for (auto& dispatcher : dispatchers_) dispatcher.join();
  // Gateways (and their workers) die with shards_ after the dispatchers.
}

void Cluster::push(const container::Image& image,
                   const std::string& reference) {
  for (auto& shard : shards_) shard->gateway->push(image, reference);
}

double Cluster::now_seconds() const { return seconds_since(start_); }

telemetry::Counter& Cluster::tenant_counter(const std::string& label,
                                            const char* which) {
  return metrics_.counter("tenant." + label + "." + which);
}

void Cluster::complete_inline(Job&& job, ErrorCode code,
                              const std::string& error, double retry_after) {
  ClusterRunResult out;
  out.tenant = job.tenant_label;
  out.result.code = code;
  out.result.error = error;
  out.result.retry_after_seconds = retry_after;
  out.total_seconds = seconds_since(job.admitted);
  job.promise.set_value(std::move(out));
}

std::future<ClusterRunResult> Cluster::submit(RunRequest request) {
  requests_->add(1);
  Job job;
  job.tenant_label = request.tenant.empty() ? "default" : request.tenant;
  job.admitted = Clock::now();
  tenant_counter(job.tenant_label, "requests").add(1);

  auto future = job.promise.get_future();
  if (stop_.load(std::memory_order_acquire)) {
    rejected_->add(1);
    tenant_counter(job.tenant_label, "rejected").add(1);
    complete_inline(std::move(job), ErrorCode::ShuttingDown,
                    "cluster is shutting down", 0.0);
    return future;
  }

  // Per-tenant token bucket: deny over-quota tenants up front with the
  // bucket's refill wait as the retry hint — the flood never reaches a
  // queue another tenant shares.
  double retry_after = 0.0;
  if (!quotas_.try_admit(request.tenant, now_seconds(), /*cost=*/1.0,
                         &retry_after)) {
    quota_denied_->add(1);
    tenant_counter(job.tenant_label, "quota_denied").add(1);
    complete_inline(std::move(job), ErrorCode::QuotaExceeded,
                    "tenant quota exceeded for " + job.tenant_label,
                    retry_after);
    return future;
  }

  job.class_key = request_class_key(request);
  const std::string home_name = ring_.lookup(job.class_key);
  job.home = shard_by_name_.at(home_name);
  Shard& shard = *shards_[job.home];

  // Graceful load-shedding: a full shard sheds instead of queueing
  // unboundedly, with an estimated drain time so clients back off.
  if (shard.pending.load(std::memory_order_acquire) >= options_.max_pending) {
    shed_->add(1);
    tenant_counter(job.tenant_label, "shed").add(1);
    complete_inline(
        std::move(job), ErrorCode::Shed,
        "gateway " + home_name + " backlog full (cluster overloaded)",
        estimated_wait_seconds(options_.max_pending));
    return future;
  }

  const double weight = request.weight > 0.0 ? request.weight
                                             : quotas_.weight(request.tenant);
  const std::string tenant_label = job.tenant_label;
  job.request = std::move(request);
  {
    std::unique_lock lock(shard.mutex);
    if (stop_.load(std::memory_order_acquire)) {
      lock.unlock();
      rejected_->add(1);
      tenant_counter(tenant_label, "rejected").add(1);
      complete_inline(std::move(job), ErrorCode::ShuttingDown,
                      "cluster is shutting down", 0.0);
      return future;
    }
    shard.wfq.push_weighted(tenant_label, /*cost=*/1.0, weight,
                            std::move(job));
    shard.pending.fetch_add(1, std::memory_order_acq_rel);
  }
  admitted_->add(1);
  tenant_counter(tenant_label, "admitted").add(1);
  shard.cv.notify_one();
  return future;
}

std::vector<ClusterRunResult> Cluster::run_all(
    std::vector<RunRequest> requests) {
  std::vector<std::future<ClusterRunResult>> futures;
  futures.reserve(requests.size());
  for (auto& request : requests) futures.push_back(submit(std::move(request)));
  std::vector<ClusterRunResult> results;
  results.reserve(futures.size());
  for (auto& future : futures) results.push_back(future.get());
  return results;
}

std::size_t Cluster::pending() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->pending.load(std::memory_order_acquire);
  }
  return total;
}

double Cluster::estimated_wait_seconds(std::size_t backlog) const {
  const double ema = std::bit_cast<double>(
      service_ema_bits_.load(std::memory_order_relaxed));
  const double per_request = ema > 0.0 ? ema : 1e-3;  // floor pre-completion
  const double dispatchers =
      static_cast<double>(options_.dispatchers_per_gateway);
  return per_request * (1.0 + static_cast<double>(backlog) / dispatchers);
}

bool Cluster::try_steal(std::size_t thief, Job* out) {
  // Most backed-up sibling above the threshold.
  std::size_t victim_index = shards_.size();
  std::size_t victim_depth = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (i == thief) continue;
    const std::size_t depth =
        shards_[i]->pending.load(std::memory_order_acquire);
    if (depth >= options_.steal_min_backlog && depth > victim_depth) {
      victim_index = i;
      victim_depth = depth;
    }
  }
  if (victim_index == shards_.size()) return false;

  // The bandwidth model arbitrates: ship only when the modeled transfer
  // (recent workload size over the inter-gateway fabric) costs less than
  // the victim's estimated drain of that backlog.
  const std::uint64_t ema_bytes =
      bytes_ema_.load(std::memory_order_relaxed);
  const std::size_t est_bytes =
      ema_bytes > 0 ? static_cast<std::size_t>(ema_bytes) : 4096;
  const double transfer =
      fabric::transfer_seconds(options_.fabric_stack, est_bytes);
  if (!steal_profitable(transfer, estimated_wait_seconds(victim_depth))) {
    steal_skipped_->add(1);
    return false;
  }

  Shard& victim = *shards_[victim_index];
  std::lock_guard lock(victim.mutex);
  if (!victim.wfq.pop(out)) return false;  // raced its own dispatchers
  victim.pending.fetch_sub(1, std::memory_order_acq_rel);
  return true;
}

void Cluster::dispatcher_loop(std::size_t shard_index) {
  Shard& shard = *shards_[shard_index];
  for (;;) {
    Job job;
    bool got = false;
    bool stolen = false;
    {
      std::unique_lock lock(shard.mutex);
      got = shard.wfq.pop(&job);
      if (got) shard.pending.fetch_sub(1, std::memory_order_acq_rel);
    }
    if (!got && options_.steal && !stop_.load(std::memory_order_acquire)) {
      got = try_steal(shard_index, &job);
      stolen = got;
    }
    if (!got) {
      std::unique_lock lock(shard.mutex);
      if (stop_.load(std::memory_order_acquire) && shard.wfq.empty()) {
        return;  // own shard drained; siblings drain themselves
      }
      // Bounded nap instead of an open wait: a sleeping dispatcher must
      // periodically rescan siblings for steal opportunities (their
      // pushes only notify their own shard).
      shard.cv.wait_for(lock, std::chrono::microseconds(500), [&] {
        return stop_.load(std::memory_order_acquire) || !shard.wfq.empty();
      });
      continue;
    }
    serve(shard_index, std::move(job), stolen);
  }
}

void Cluster::serve(std::size_t shard_index, Job job, bool stolen) {
  Shard& shard = *shards_[shard_index];
  double fabric_seconds = 0.0;
  const std::size_t bytes = workload_bytes(job.request.workload);
  if (stolen) {
    // The shipment the profitability check priced: workload bytes over
    // the inter-gateway fabric.
    fabric_seconds += fabric::transfer_seconds(options_.fabric_stack, bytes);
    stolen_->add(1);
    shard.stolen->add(1);
  }
  // Cross-gateway cache fill: the first gateway to serve a class builds
  // it; any other gateway serving the same class later (steal or ring
  // change) pulls the specialized artifact over the fabric instead of
  // rebuilding — modeled, like the steal shipment.
  {
    bool fill = false;
    {
      std::lock_guard lock(warm_mutex_);
      auto& warm = warm_[job.class_key];
      const bool cold_here = warm.insert(shard_index).second;
      fill = cold_here && warm.size() > 1;
    }
    if (fill) {
      // With distribution on, the registry protocol moves (and prices)
      // the real blobs — the flat fill model would double-charge.
      if (!fabric_) {
        fabric_seconds += fabric::transfer_seconds(options_.fabric_stack,
                                                   options_.fill_bytes);
      }
      fills_->add(1);
      shard.fills->add(1);
    }
  }

  RunResult result = shard.gateway->submit(job.request).get();
  const double total = seconds_since(job.admitted);

  // Service-time EMA (steal profitability + retry-after hints).
  auto ema_bits = service_ema_bits_.load(std::memory_order_relaxed);
  for (;;) {
    const double current = std::bit_cast<double>(ema_bits);
    const double next = current == 0.0 ? total : current * 0.9 + total * 0.1;
    if (service_ema_bits_.compare_exchange_weak(
            ema_bits, std::bit_cast<std::uint64_t>(next),
            std::memory_order_relaxed)) {
      break;
    }
  }
  // Workload-size EMA (integer arithmetic is plenty for an estimate).
  const std::uint64_t prev_bytes = bytes_ema_.load(std::memory_order_relaxed);
  bytes_ema_.store(prev_bytes == 0
                       ? bytes
                       : (prev_bytes * 9 + static_cast<std::uint64_t>(bytes)) /
                             10,
                   std::memory_order_relaxed);

  shard.served->add(1);
  (result.ok ? completed_ : failed_)->add(1);
  tenant_counter(job.tenant_label, result.ok ? "completed" : "failed").add(1);
  metrics_.histogram("tenant." + job.tenant_label + ".total_seconds")
      .observe(total);
  if (fabric_seconds > 0.0) {
    fabric_nanos_->add(static_cast<std::uint64_t>(fabric_seconds * 1e9));
  }

  ClusterRunResult out;
  out.result = std::move(result);
  out.tenant = job.tenant_label;
  out.gateway = shard.name;
  out.home_gateway = shards_[job.home]->name;
  out.stolen = stolen;
  out.fabric_seconds = fabric_seconds;
  out.total_seconds = total;
  job.promise.set_value(std::move(out));

  // Gossip cadence: every gossip_every-th completion on this shard
  // advertises its hot digests to the ring successors, so peers warm up
  // before their first request for the class.
  if (fabric_ && options_.gossip_every > 0) {
    const std::uint64_t n =
        shard.completions.fetch_add(1, std::memory_order_relaxed) + 1;
    if (n % options_.gossip_every == 0) {
      if (DistributionPeer* peer = shard.gateway->distribution()) {
        peer->gossip_round();
      }
    }
  }
}

void Cluster::distribution_flush() {
  if (!fabric_) return;
  // Sweep to quiescence: each sweep lets hints (and their blobs) hop
  // fanout successors further around the ring; when a full sweep accepts
  // nothing anywhere, every announced digest is replicated ring-wide.
  // Terminates: acceptances are bounded by peers × announced blobs.
  for (;;) {
    std::size_t accepted = 0;
    for (auto& shard : shards_) {
      if (DistributionPeer* peer = shard->gateway->distribution()) {
        accepted += peer->gossip_round();
      }
    }
    if (accepted == 0) return;
  }
}

telemetry::MetricsSnapshot Cluster::snapshot() const {
  telemetry::MetricsSnapshot snap = metrics_.snapshot();
  // Fabric-wide distribution totals overlay here (and only here: the
  // per-gateway snapshots carry their per-peer slices, so summing those
  // reconciles against these totals instead of double-counting them).
  if (fabric_) {
    const DistributionStats stats = fabric_->stats();
    snap.counters["distribution.manifest_msgs"] = stats.manifest_msgs;
    snap.counters["distribution.manifest_bytes"] = stats.manifest_bytes;
    snap.counters["distribution.request_msgs"] = stats.request_msgs;
    snap.counters["distribution.request_bytes"] = stats.request_bytes;
    snap.counters["distribution.blobs_sent"] = stats.blobs_sent;
    snap.counters["distribution.blob_bytes"] = stats.blob_bytes;
    snap.counters["distribution.gossip_msgs"] = stats.gossip_msgs;
    snap.counters["distribution.gossip_bytes"] = stats.gossip_bytes;
    snap.counters["distribution.blobs_accepted"] = stats.blobs_accepted;
    snap.counters["distribution.blobs_rejected"] = stats.blobs_rejected;
    snap.counters["distribution.dedup_saved_bytes"] = stats.dedup_saved_bytes;
    snap.counters["distribution.messages_total"] = stats.messages_total();
    snap.counters["distribution.bytes_total"] = stats.bytes_total();
    snap.counters["distribution.transfer_nanos"] = stats.transfer_nanos;
  }
  return snap;
}

}  // namespace xaas::service
