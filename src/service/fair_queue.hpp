// Fair-share admission primitives for the multi-gateway cluster
// (service/cluster.hpp): per-tenant token-bucket quotas and weighted
// fair queuing. Both are driven by an *explicit* clock — every method
// takes `now` in seconds — so the fairness properties are testable with
// virtual time (no sleeps, no wall-clock reads): feed a deterministic
// event sequence, assert the exact admission/drain order
// (tests/service/fair_queue_test.cpp).
//
// TokenBucket / QuotaSet answer "may this tenant submit more work right
// now" (rate * burst quotas, retry-after hints on denial);
// WeightedFairQueue answers "whose queued job runs next" (service in
// proportion to weight while backlogged). The cluster layers the WFQ
// *in front of* each gateway's per-priority MPMC rings: WFQ picks the
// tenant order, the gateway's rings keep the existing priority/FIFO
// semantics for whatever the WFQ releases.
//
// Thread-safety: TokenBucket and WeightedFairQueue are deliberately NOT
// thread-safe (the cluster guards each shard's queue with the shard
// mutex; tests drive them single-threaded with virtual time). QuotaSet
// is thread-safe — admission checks race across client threads.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace xaas::service {

/// Per-tenant fair-share configuration: admission rate (token bucket)
/// and drain share (WFQ weight).
struct TenantQuota {
  /// Sustained admissions per second (token refill rate).
  double rate_per_second = 1e9;
  /// Bucket capacity: admissions that may burst back to back after idle.
  double burst = 1e9;
  /// WFQ weight: a backlogged tenant with weight 2 drains twice as fast
  /// as one with weight 1. Must be > 0.
  double weight = 1.0;
};

/// Deterministic token bucket over an explicit clock. Starts full
/// (burst available immediately); refills continuously at
/// rate_per_second up to burst. `now` values must be monotonically
/// non-decreasing across calls.
class TokenBucket {
public:
  explicit TokenBucket(TenantQuota quota, double now = 0.0);

  /// Consume `cost` tokens if available at `now`. A cost larger than the
  /// burst capacity can never be admitted whole and is clamped to the
  /// burst (documented quota semantics: one oversized request costs at
  /// most a full bucket).
  bool try_acquire(double now, double cost = 1.0);

  /// Seconds from `now` until `cost` tokens will be available (0 when
  /// try_acquire would already succeed). Always finite: cost is clamped
  /// to the burst capacity, and a zero refill rate reports one hour.
  double retry_after_seconds(double now, double cost = 1.0) const;

  /// Tokens available at `now` (refill applied, bucket not mutated).
  double tokens(double now) const;

private:
  double refilled(double now) const;

  TenantQuota quota_;
  double tokens_;
  double last_;  // time of the last mutation (refill anchor)
};

/// Thread-safe per-tenant quota table: a TokenBucket per tenant, created
/// on first use from the default quota or a per-tenant override. The
/// cluster consults this at admission; denials carry a retry-after hint.
class QuotaSet {
public:
  explicit QuotaSet(TenantQuota default_quota) : default_(default_quota) {}

  /// Override the quota for one tenant. Resets that tenant's bucket (the
  /// new burst is immediately available); call before serving.
  void set_quota(const std::string& tenant, TenantQuota quota);

  /// Admit `cost` units for `tenant` at `now`, or deny and report the
  /// refill wait in `*retry_after` (always > 0 on denial).
  bool try_admit(const std::string& tenant, double now, double cost,
                 double* retry_after);

  /// The WFQ weight configured for this tenant (default quota's weight
  /// when no override exists).
  double weight(const std::string& tenant) const;

  /// The quota in force for this tenant.
  TenantQuota quota(const std::string& tenant) const;

private:
  mutable std::mutex mutex_;
  TenantQuota default_;
  std::map<std::string, TenantQuota> overrides_;
  std::map<std::string, TokenBucket> buckets_;
};

/// Weighted fair queue (virtual-finish-time WFQ): each tenant has a FIFO
/// backlog; pop() serves the job with the smallest virtual finish tag,
/// so backlogged tenants receive service in proportion to their weight
/// regardless of arrival bursts. Tags are a pure function of the
/// push/pop sequence — identical sequences drain in identical order
/// (ties break on (finish tag, tenant name), never on clocks or
/// addresses).
///
/// Virtual time advances to the start tag of each served job; an idle
/// tenant's next job starts at max(virtual time, its last finish), so
/// idling banks no credit.
template <typename T>
class WeightedFairQueue {
public:
  /// Set (or change) a tenant's weight; affects jobs pushed afterwards.
  void set_weight(const std::string& tenant, double weight) {
    state_for(tenant, weight).weight = weight > 0.0 ? weight : 1.0;
  }

  /// Enqueue one job of `cost` virtual units for `tenant`.
  void push(const std::string& tenant, double cost, T value) {
    push_weighted(tenant, cost, 0.0, std::move(value));
  }

  /// Enqueue with a per-job weight override (0 = the tenant's weight).
  void push_weighted(const std::string& tenant, double cost, double weight,
                     T value) {
    Tenant& state = state_for(tenant, /*weight=*/0.0);
    const double w = weight > 0.0 ? weight : state.weight;
    const double start =
        state.last_finish > virtual_time_ ? state.last_finish : virtual_time_;
    const double finish = start + (cost > 0.0 ? cost : 1e-9) / w;
    state.last_finish = finish;
    state.backlog.push_back(Item{start, finish, std::move(value)});
    ++size_;
  }

  /// Dequeue the job with the smallest finish tag. Returns false when
  /// empty. On success fills `*out` and (when non-null) `*tenant`.
  bool pop(T* out, std::string* tenant = nullptr) {
    const Tenant* best = nullptr;
    const std::string* best_name = nullptr;
    for (const auto& [name, state] : tenants_) {
      if (state.backlog.empty()) continue;
      if (best == nullptr ||
          state.backlog.front().finish < best->backlog.front().finish) {
        best = &state;
        best_name = &name;
      }
      // Equal tags: std::map iteration is name-ascending, so the first
      // seen wins — deterministic without comparing anything else.
    }
    if (best == nullptr) return false;
    Tenant& state = tenants_.at(*best_name);
    Item item = std::move(state.backlog.front());
    state.backlog.pop_front();
    --size_;
    if (item.start > virtual_time_) virtual_time_ = item.start;
    if (tenant != nullptr) *tenant = *best_name;
    *out = std::move(item.value);
    return true;
  }

  /// Peek the finish tag of the next job to be served (the steal
  /// protocol compares backlogs). Returns false when empty.
  bool head_finish(double* finish) const {
    bool any = false;
    for (const auto& [name, state] : tenants_) {
      if (state.backlog.empty()) continue;
      if (!any || state.backlog.front().finish < *finish) {
        *finish = state.backlog.front().finish;
        any = true;
      }
    }
    return any;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  std::size_t tenant_depth(const std::string& tenant) const {
    const auto it = tenants_.find(tenant);
    return it == tenants_.end() ? 0 : it->second.backlog.size();
  }

private:
  struct Item {
    double start = 0.0;
    double finish = 0.0;
    T value;
  };
  struct Tenant {
    double weight = 1.0;
    double last_finish = 0.0;
    std::deque<Item> backlog;
  };

  Tenant& state_for(const std::string& tenant, double weight) {
    auto it = tenants_.find(tenant);
    if (it == tenants_.end()) {
      Tenant fresh;
      if (weight > 0.0) fresh.weight = weight;
      it = tenants_.emplace(tenant, std::move(fresh)).first;
    }
    return it->second;
  }

  std::map<std::string, Tenant> tenants_;
  double virtual_time_ = 0.0;
  std::size_t size_ = 0;
};

}  // namespace xaas::service
