// Fleet deployment scheduler: fans deploy_ir_container out over a
// ThreadPool for batches of (node, image, selection) requests, with a
// SpecializationCache in front so a fleet of identical microarchitectures
// lowers once and shares the deployed image and its DecodedProgram.
//
// This is the serving layer the paper's registry-of-IR-containers vision
// implies (§4.3/§5.2): a request names an image by tag or digest in a
// ShardedRegistry plus the node it should be specialized for; the
// scheduler resolves the deployment plan (configuration + clamped
// target), consults the cache, and only cache-missing specializations
// pay the lowering.
#pragma once

#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "service/artifact_store.hpp"
#include "service/reliability.hpp"
#include "service/sharded_registry.hpp"
#include "service/spec_cache.hpp"
#include "vm/node.hpp"
#include "xaas/ir_deploy.hpp"

namespace xaas::service {

class BuildFarm;
class DistributionPeer;

struct FleetDeployRequest {
  vm::NodeSpec node;
  std::string image_reference;  // tag or "sha256:..." digest
  IrDeployOptions options;
};

/// Kind-agnostic deployment request: the scheduler inspects the image's
/// org.xaas.container-kind annotation and routes to the IR path (this
/// scheduler's specialization cache) or the source path (an attached
/// BuildFarm). One batch may mix source and IR images freely.
struct MixedDeployRequest {
  vm::NodeSpec node;
  std::string image_reference;
  std::map<std::string, std::string> selections;
  std::optional<isa::VectorIsa> march;
  int opt_level = 2;
  /// Source path only: apply the recommendation policy for unselected
  /// points (ignored for IR images, whose configurations are baked in).
  bool auto_specialize = true;
};

struct FleetDeployResult {
  bool ok = false;
  std::string error;
  /// Machine-readable failure classification (Ok on success): NotFound
  /// for unknown references, DeployFailed for everything else.
  ErrorCode code = ErrorCode::Ok;
  /// Whether a failure is plausibly transient — the elected deployer (a
  /// build, a lowering, infrastructure under it) failed, so a retry may
  /// succeed; failed entries are never cached (spec_cache.cpp), making
  /// retries meaningful. Plan/manifest/reconstruction failures are
  /// deterministic and reported non-transient.
  bool transient = false;

  std::string node_name;
  /// The node this request was deployed for (run() executes on it).
  vm::NodeSpec node;
  std::string configuration;  // selected configuration id
  /// Whether this node reused a cached specialization instead of lowering.
  bool cache_hit = false;
  /// The shared deployment (image + program + decoded program). Multiple
  /// results of one fleet point at the same object, so the app itself is
  /// node-agnostic (its node_name is cleared); always execute through
  /// run() here or app->run_on(node, ...), never app->run().
  std::shared_ptr<const DeployedApp> app;

  /// Execute a workload on this request's node via the shared program.
  vm::RunResult run(vm::Workload& workload, int threads = 1) const;
};

/// Shared async plumbing for the deploy services (scheduler and build
/// farm): wrap a synchronous deploy call as a pool task with exception
/// propagation, and drain a batch of futures in request order.
namespace detail {

template <typename Fn>
std::future<FleetDeployResult> enqueue_deploy(common::ThreadPool& pool,
                                              Fn deploy_fn) {
  auto promise = std::make_shared<std::promise<FleetDeployResult>>();
  auto future = promise->get_future();
  pool.submit([promise, deploy_fn = std::move(deploy_fn)]() mutable {
    try {
      promise->set_value(deploy_fn());
    } catch (...) {
      promise->set_exception(std::current_exception());
    }
  });
  return future;
}

inline std::vector<FleetDeployResult> collect_deploys(
    std::vector<std::future<FleetDeployResult>> futures) {
  std::vector<FleetDeployResult> results;
  results.reserve(futures.size());
  for (auto& future : futures) results.push_back(future.get());
  return results;
}

}  // namespace detail

struct DeploySchedulerOptions {
  /// Worker threads for deploy fan-out (0 = hardware concurrency).
  std::size_t threads = 0;
  /// Shards of the specialization cache.
  std::size_t cache_shards = 16;
  /// Pre-decode each cached program for the VM once at deploy time, so
  /// fleet executors share the DecodedProgram instead of re-decoding.
  bool predecode = true;
  /// Persistent tier: when non-null, lowered specializations persist to
  /// (and revive from) this store across scheduler lifetimes. Borrowed —
  /// the store must outlive the scheduler.
  ArtifactStore* artifact_store = nullptr;
  /// Remote-registry level under the disk tier: when non-null, a cache
  /// miss first tries to pull the blob from ring peers before falling
  /// back to a build (the single-flight leader does the one fetch). The
  /// peer must front the same store as `artifact_store`. Borrowed.
  DistributionPeer* distribution = nullptr;
};

/// Fleet deployment scheduler (IR path + mixed-kind routing).
///
/// Thread-safety: submit(), deploy(), and deploy_batch() are safe from
/// any thread — the specialization cache and the per-digest manifest
/// memo carry their own locks, and the worker pool serializes nothing
/// beyond them. attach_build_farm() is not synchronized: attach before
/// the scheduler starts serving.
/// Ownership: borrows the ShardedRegistry (and the BuildFarm, when
/// attached) — both must outlive the scheduler; owns its
/// SpecializationCache and ThreadPool. Deployed apps are handed out as
/// shared_ptr<const DeployedApp> that outlive the scheduler.
class DeployScheduler {
public:
  explicit DeployScheduler(ShardedRegistry& registry,
                           DeploySchedulerOptions options = {});
  /// With a build farm attached, mixed batches can route source images
  /// too (the farm's caches are used; its pool is not — this scheduler's
  /// pool does the fan-out).
  DeployScheduler(ShardedRegistry& registry, BuildFarm& farm,
                  DeploySchedulerOptions options = {});

  DeployScheduler(const DeployScheduler&) = delete;
  DeployScheduler& operator=(const DeployScheduler&) = delete;

  /// Asynchronously deploy one request on the pool.
  std::future<FleetDeployResult> submit(FleetDeployRequest request);

  /// Deploy a batch, fanning out over the pool; results are returned in
  /// request order after all complete.
  std::vector<FleetDeployResult> deploy_batch(
      std::vector<FleetDeployRequest> requests);

  /// Synchronous single deploy (the pool is bypassed; the cache is not).
  FleetDeployResult deploy(const FleetDeployRequest& request);

  /// Route one request by the image's container-kind annotation:
  /// "source" → the attached BuildFarm, anything else → the IR path.
  FleetDeployResult deploy(const MixedDeployRequest& request);
  std::future<FleetDeployResult> submit(MixedDeployRequest request);
  std::vector<FleetDeployResult> deploy_batch(
      std::vector<MixedDeployRequest> requests);

  /// Attach (or replace) the build farm used for source-kind requests.
  void attach_build_farm(BuildFarm& farm) { farm_ = &farm; }

  const SpecializationCache& cache() const { return cache_; }
  SpecializationCache& cache() { return cache_; }

private:
  /// Parsed manifest for `digest`, cached so repeated requests (every
  /// cache hit of a fleet) skip the image flatten + JSON parse.
  std::shared_ptr<const IrImageManifest> manifest_for(
      const std::string& digest, const container::Image& image);

  /// Install the persistent-tier adapter when options name a store.
  void attach_artifact_store();

  ShardedRegistry& registry_;
  DeploySchedulerOptions options_;
  SpecializationCache cache_;
  // Adapter over options_.artifact_store (null when no store); a
  // SpecDistributionTier when options_.distribution is set.
  std::unique_ptr<SpecDiskTier> spec_tier_;
  BuildFarm* farm_ = nullptr;  // source-kind routing; may be null

  std::mutex manifests_mutex_;
  std::map<std::string, std::shared_ptr<const IrImageManifest>> manifests_;

  // Declared last, destroyed first: ~ThreadPool drains queued deploy
  // tasks, which still use cache_ and manifests_ above.
  common::ThreadPool pool_;
};

}  // namespace xaas::service
