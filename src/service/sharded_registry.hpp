// Thread-safe sharded registry — the serving-layer counterpart of
// container::Registry (§4.3/§5.2: many heterogeneous nodes pull IR
// containers and specialize on demand).
//
// Two scaling changes versus the single-threaded map:
//  - images are held as shared_ptr<const Image>, so `pull` hands out a
//    reference instead of deep-copying every layer, and a popular image
//    is stored once no matter how many fleets pull it;
//  - state is split into N digest-keyed blob shards and N reference-keyed
//    tag shards, each behind its own shared_mutex, so pushes and pulls of
//    unrelated images never contend on one lock.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "container/image.hpp"

namespace xaas::service {

/// Thread-safe sharded image registry.
///
/// Thread-safety: every member is safe to call concurrently from any
/// thread. Digest-keyed blob shards and reference-keyed tag shards each
/// sit behind their own shared_mutex (readers share, writers exclude);
/// cross-shard queries (tags(), image_count(), tags_for_architecture())
/// lock shards one at a time and therefore see a consistent per-shard —
/// not global — snapshot.
/// Ownership: the registry owns its images as shared_ptr<const Image>;
/// pull() hands out shared ownership (never a deep copy), so returned
/// images remain valid after the registry drops or replaces them.
class ShardedRegistry {
public:
  /// `shard_count` is clamped to >= 1. The default suits tens of
  /// concurrent clients; shards cost one mutex + one map each.
  explicit ShardedRegistry(std::size_t shard_count = 16);

  ShardedRegistry(const ShardedRegistry&) = delete;
  ShardedRegistry& operator=(const ShardedRegistry&) = delete;

  /// Push an image under `reference` ("repo/name:tag"); returns the image
  /// digest. Pushing the same content twice is idempotent (one blob).
  std::string push(const container::Image& image,
                   const std::string& reference);
  /// Zero-copy push of an already-shared image (e.g. a deployed image
  /// coming out of the specialization cache).
  std::string push(std::shared_ptr<const container::Image> image,
                   const std::string& reference);

  /// Pull by tag reference or "sha256:..." digest. The returned pointer
  /// shares ownership with the registry — layers are never copied.
  std::shared_ptr<const container::Image> pull(
      const std::string& reference_or_digest) const;

  /// Resolve a reference (or digest) to the stored digest, if present.
  std::optional<std::string> resolve(
      const std::string& reference_or_digest) const;

  /// Read one annotation without materializing layers (§5.2: query
  /// specialization points before pulling and building).
  std::optional<std::string> annotation(const std::string& reference,
                                        const std::string& key) const;

  /// All tags, sorted.
  std::vector<std::string> tags() const;

  /// Tags resolving to images of the given architecture — the "image
  /// index" query a multi-arch/multi-IR client performs.
  std::vector<std::string> tags_for_architecture(
      const std::string& arch) const;

  std::size_t image_count() const;
  std::size_t shard_count() const { return blob_shards_.size(); }

private:
  struct BlobShard {
    mutable std::shared_mutex mutex;
    std::map<std::string, std::shared_ptr<const container::Image>> images;
  };
  struct TagShard {
    mutable std::shared_mutex mutex;
    std::map<std::string, std::string> tags;  // reference -> digest
  };

  BlobShard& blob_shard_for(const std::string& digest);
  const BlobShard& blob_shard_for(const std::string& digest) const;
  TagShard& tag_shard_for(const std::string& reference);
  const TagShard& tag_shard_for(const std::string& reference) const;

  std::vector<std::unique_ptr<BlobShard>> blob_shards_;
  std::vector<std::unique_ptr<TagShard>> tag_shards_;
};

}  // namespace xaas::service
