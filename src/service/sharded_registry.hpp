// Thread-safe registry — the serving-layer counterpart of
// container::Registry (§4.3/§5.2: many heterogeneous nodes pull IR
// containers and specialize on demand).
//
// Two scaling changes versus the single-threaded map:
//  - images are held as shared_ptr<const Image>, so `pull` hands out a
//    reference instead of deep-copying every layer, and a popular image
//    is stored once no matter how many fleets pull it;
//  - the whole (images, tags) state is one immutable RCU snapshot
//    (common/rcu.hpp): reads pin an epoch and probe without taking any
//    lock; pushes copy-swap-retire the state under a small write mutex.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rcu.hpp"
#include "container/image.hpp"

namespace xaas::service {

/// Thread-safe image registry with a wait-free read path.
///
/// Thread-safety: every member is safe to call concurrently from any
/// thread. Reads (pull/resolve/annotation/tags/...) pin an epoch and
/// work on one immutable snapshot — they never block, and a single read
/// sees tags and blobs from the *same* version (a tag can never point
/// at a blob the same snapshot lacks). Writes serialize on one small
/// mutex, copy the state, and publish the new version atomically; the
/// old version is reclaimed only after every pinned reader advances.
/// Ownership: the registry owns its images as shared_ptr<const Image>;
/// pull() hands out shared ownership (never a deep copy), so returned
/// images remain valid after the registry drops or replaces them.
class ShardedRegistry {
public:
  /// `shard_count` is kept for API compatibility with the lock-sharded
  /// implementation; it only sizes shard_count() reporting. Reads are
  /// wait-free regardless.
  explicit ShardedRegistry(std::size_t shard_count = 16);

  ShardedRegistry(const ShardedRegistry&) = delete;
  ShardedRegistry& operator=(const ShardedRegistry&) = delete;

  /// Push an image under `reference` ("repo/name:tag"); returns the image
  /// digest. Pushing the same content twice is idempotent (one blob).
  std::string push(const container::Image& image,
                   const std::string& reference);
  /// Zero-copy push of an already-shared image (e.g. a deployed image
  /// coming out of the specialization cache).
  std::string push(std::shared_ptr<const container::Image> image,
                   const std::string& reference);

  /// Pull by tag reference or "sha256:..." digest. The returned pointer
  /// shares ownership with the registry — layers are never copied.
  std::shared_ptr<const container::Image> pull(
      const std::string& reference_or_digest) const;

  /// Resolve a reference (or digest) to the stored digest, if present.
  std::optional<std::string> resolve(
      const std::string& reference_or_digest) const;

  /// Read one annotation without materializing layers (§5.2: query
  /// specialization points before pulling and building).
  std::optional<std::string> annotation(const std::string& reference,
                                        const std::string& key) const;

  /// All tags, sorted.
  std::vector<std::string> tags() const;

  /// Tags resolving to images of the given architecture — the "image
  /// index" query a multi-arch/multi-IR client performs. One consistent
  /// snapshot: every returned tag resolved against the same version.
  std::vector<std::string> tags_for_architecture(
      const std::string& arch) const;

  std::size_t image_count() const;
  std::size_t shard_count() const { return shard_count_; }

private:
  struct State {
    // Content store (digest -> blob) plus the tag table, and a
    // denormalized reference -> blob index maintained on push so the
    // hot read (pull by tag) is a single hash probe. Denormalizing on
    // the write side is free here: every publish copies the state
    // anyway, and immutability means the index can never go stale.
    std::unordered_map<std::string, std::shared_ptr<const container::Image>>
        images;
    std::unordered_map<std::string, std::string> tags;  // reference -> digest
    std::unordered_map<std::string, std::shared_ptr<const container::Image>>
        by_ref;  // reference -> blob (always tags composed with images)
  };

  std::size_t shard_count_;
  common::rcu::Snapshot<State> state_;
};

}  // namespace xaas::service
