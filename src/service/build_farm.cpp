#include "service/build_farm.hpp"

#include "common/hashing.hpp"
#include "service/distribution.hpp"
#include "service/fault.hpp"
#include "vm/decoded.hpp"

namespace xaas::service {

BuildFarm::BuildFarm(ShardedRegistry& registry, BuildFarmOptions options)
    : registry_(registry),
      options_(options),
      cache_(options.cache_shards),
      pool_(options.threads) {
  if (options_.distribution) {
    // Remote-registry level under both cache granularities: the elected
    // builder pulls whole deployments and individual TUs from ring
    // peers before compiling anything.
    spec_tier_ = std::make_unique<SpecDistributionTier>(*options_.distribution,
                                                        options_.predecode);
    tu_tier_ = std::make_unique<TuDistributionTier>(*options_.distribution);
    cache_.set_disk_tier(spec_tier_.get());
  } else if (options_.artifact_store) {
    spec_tier_ = std::make_unique<SpecArtifactTier>(*options_.artifact_store,
                                                    options_.predecode);
    tu_tier_ = std::make_unique<TuArtifactTier>(*options_.artifact_store);
    cache_.set_disk_tier(spec_tier_.get());
  }
}

void BuildFarm::set_tu_observer(minicc::CompileCache::Observer observer) {
  std::lock_guard lock(states_mutex_);
  tu_observer_ = std::move(observer);
}

std::shared_ptr<const BuildFarm::ImageState> BuildFarm::state_for(
    const std::string& digest, const container::Image& image) {
  minicc::CompileCache::Observer tu_observer;
  {
    std::lock_guard lock(states_mutex_);
    const auto it = states_.find(digest);
    if (it != states_.end()) return it->second;
    tu_observer = tu_observer_;
  }
  // Reconstruct outside the lock; concurrent first requests may both
  // reconstruct, the map keeps whichever lands first (identical by
  // digest).
  auto state = std::make_shared<ImageState>();
  SourceImageApp from_image = application_from_source_image(image);
  if (from_image.ok) {
    state->app =
        std::make_shared<const Application>(std::move(from_image.app));
    state->tu_cache = std::make_shared<minicc::CompileCache>();
    if (tu_observer) state->tu_cache->set_observer(std::move(tu_observer));
    // TU keys are image-independent (post-preprocess hash pins the
    // content), so every per-image cache shares one persistent tier.
    if (tu_tier_) state->tu_cache->set_disk_tier(tu_tier_.get());
    // minicc cannot depend on the serving layer, so the fault plan is
    // bridged in via the cache's generic hook: flaky TU builds keyed by
    // source path (the k-th build attempt of one TU fails or not,
    // deterministically per seed).
    state->tu_cache->set_fault_hook(
        [](const minicc::TuKey& key) -> std::optional<std::string> {
          if (XAAS_FAULT_POINT(fault::kTuBuild, key.source)) {
            return "injected TU build fault: " + key.source;
          }
          return std::nullopt;
        });
  } else {
    state->app_error = from_image.error;
  }
  std::lock_guard lock(states_mutex_);
  return states_
      .emplace(digest, std::shared_ptr<const ImageState>(std::move(state)))
      .first->second;
}

FleetDeployResult BuildFarm::deploy(const SourceDeployRequest& request) {
  FleetDeployResult result;
  result.node_name = request.node.name;
  result.node = request.node;

  const auto digest = registry_.resolve(request.image_reference);
  if (!digest) {
    result.code = ErrorCode::NotFound;
    result.error = "image not found in registry: " + request.image_reference;
    return result;
  }
  const auto image = registry_.pull(*digest);  // shared, no layer copy

  const auto state = state_for(*digest, *image);
  if (!state->app) {
    // Reconstruction failures are a property of the image content:
    // deterministic, retrying cannot help.
    result.code = ErrorCode::DeployFailed;
    result.error = state->app_error;
    return result;
  }
  const Application& app = *state->app;

  // The cheap, node-specific half: discovery, intersection, selection,
  // configure, target resolution. Failures never reach the caches.
  const SourceDeployPlan plan =
      plan_source_deploy(*image, app, request.node, request.options);
  if (!plan.ok) {
    // Plan failures are deterministic (bad selection, march beyond the
    // node): not transient, retrying cannot help.
    result.code = ErrorCode::DeployFailed;
    result.error = plan.error;
    return result;
  }
  result.configuration = plan.configuration.id();

  // Whole-deployment key: build_source_deploy is a pure function of
  // (source image, resolved option values, target) — the node only
  // contributed to resolving the plan.
  SpecKey key;
  key.digest = *digest;
  key.selections =
      common::canonical_selections(plan.configuration.option_values);
  key.target = plan.target;

  const auto app_ptr = cache_.get_or_deploy(
      key,
      [&]() -> std::shared_ptr<const DeployedApp> {
        auto deployed = std::make_shared<DeployedApp>(build_source_deploy(
            *image, app, plan,
            options_.tu_cache ? state->tu_cache.get() : nullptr));
        if (deployed->ok && options_.predecode) {
          deployed->decoded = std::make_shared<const vm::DecodedProgram>(
              vm::DecodedProgram::build(deployed->program));
        }
        return deployed;
      },
      &result.cache_hit);

  if (!app_ptr) {
    result.code = ErrorCode::DeployFailed;
    result.transient = true;  // the elected builder threw; not cached
    result.error = "deployment failed";
    return result;
  }
  result.app = app_ptr;
  result.ok = app_ptr->ok;
  if (!app_ptr->ok) {
    // The build (or injected TU fault under it) failed; failed entries
    // are never cached, so a retry elects a fresh builder.
    result.code = ErrorCode::DeployFailed;
    result.transient = true;
    result.error = app_ptr->error;
  }
  return result;
}

std::future<FleetDeployResult> BuildFarm::submit(SourceDeployRequest request) {
  return detail::enqueue_deploy(
      pool_,
      [this, request = std::move(request)] { return deploy(request); });
}

std::vector<FleetDeployResult> BuildFarm::deploy_batch(
    std::vector<SourceDeployRequest> requests) {
  std::vector<std::future<FleetDeployResult>> futures;
  futures.reserve(requests.size());
  for (auto& request : requests) {
    futures.push_back(submit(std::move(request)));
  }
  return detail::collect_deploys(std::move(futures));
}

std::size_t BuildFarm::tu_compiles() const {
  std::size_t total = 0;
  std::lock_guard lock(states_mutex_);
  for (const auto& [digest, state] : states_) {
    (void)digest;
    if (state->tu_cache) total += state->tu_cache->tu_compiles();
  }
  return total;
}

std::size_t BuildFarm::tu_cache_hits() const {
  std::size_t total = 0;
  std::lock_guard lock(states_mutex_);
  for (const auto& [digest, state] : states_) {
    (void)digest;
    if (state->tu_cache) total += state->tu_cache->tu_hits();
  }
  return total;
}

std::size_t BuildFarm::tu_disk_hits() const {
  std::size_t total = 0;
  std::lock_guard lock(states_mutex_);
  for (const auto& [digest, state] : states_) {
    (void)digest;
    if (state->tu_cache) total += state->tu_cache->tu_disk_hits();
  }
  return total;
}

}  // namespace xaas::service
