// XaaS serving gateway: the front door that turns the container pieces
// into the service the paper describes (§2, §7 — and the companion
// "Acceleration as a Service" vision): a user submits *work*, not a
// deployment; the platform owns the fleet, specializes a container for
// the node it picks, runs the workload, and answers with numerics plus a
// structured account of where the time went and which caches hit.
//
// One request travels:
//
//   submit() ── admission ──> per-class MPMC rings ── worker ──> routing
//     (bounded, backpressure)    (priority desc,          (ISA compatibility +
//                                 FIFO within a class)     least current load,
//                                                          one epoch snapshot)
//        ──> deploy (DeployScheduler/BuildFarm; SpecializationCache and
//             CompileCache make repeat specializations ~free)
//        ──> run (pre-decoded program on the routed node, per-run stats
//             hook into telemetry)
//        ──> RunResult {numerics digest, per-stage latencies, cache hits}
//
// Everything the gateway and the caches do is measured into a
// telemetry::MetricsRegistry (see telemetry.hpp); snapshot() exposes it.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/mpmc_ring.hpp"
#include "common/rcu.hpp"
#include "service/build_farm.hpp"
#include "service/deploy_scheduler.hpp"
#include "service/fault.hpp"
#include "service/reliability.hpp"
#include "service/sharded_registry.hpp"
#include "service/telemetry.hpp"
#include "vm/executor.hpp"
#include "vm/node.hpp"

namespace xaas::service {

class DistributionFabric;

/// One unit of user work: which image, which configuration, what to run.
struct RunRequest {
  std::string image_reference;  // tag or "sha256:..." digest
  /// Option selections; for IR images they must name exactly one baked
  /// configuration, for source images anything unselected falls back to
  /// the recommendation policy (when auto_specialize) or script defaults.
  std::map<std::string, std::string> selections;
  std::optional<isa::VectorIsa> march;
  int opt_level = 2;
  bool auto_specialize = true;  // source path only
  vm::Workload workload;
  int threads = 1;
  /// Admission priority: higher runs first; FIFO within one priority.
  int priority = 0;
  /// Total wall-clock budget in seconds, measured from admission
  /// (0 = no deadline). Checked at dequeue, before each attempt, before
  /// the run, and before every backoff sleep; work already in flight is
  /// never preempted.
  double deadline_seconds = 0.0;

  // Multi-tenancy (consumed by the cluster front tier,
  // service/cluster.hpp — a single Gateway ignores both fields).
  /// Tenant identity for quota and fair-share accounting; "" is the
  /// anonymous default tenant.
  std::string tenant;
  /// Per-request WFQ weight override (0 = the tenant's configured
  /// weight). Larger weights drain faster while backlogged.
  double weight = 0.0;
};

/// Structured completion of one request.
struct RunResult {
  bool ok = false;
  std::string error;
  /// Machine-readable classification (Ok iff ok) — clients branch on
  /// this, never on the error string. is_retryable(code) says whether
  /// resubmitting can help.
  ErrorCode code = ErrorCode::Ok;
  /// For QueueFull/Shed completions: suggested wait before resubmitting,
  /// seconds (estimated queue drain time); 0 when not applicable.
  double retry_after_seconds = 0.0;
  /// Deploy+run attempts consumed (0 when the request never left the
  /// queue). attempts - 1 retries were granted by the retry policy.
  int attempts = 0;

  std::string node_name;      // fleet node the request ran on
  std::string configuration;  // selected/resolved configuration id
  std::string image_digest;   // digest of the specialized (derived) image
  /// Whether the deployment reused a cached specialization instead of
  /// lowering/building.
  bool spec_cache_hit = false;

  /// Numerics + cost-model output of the execution.
  vm::RunResult run;
  /// sha256 over the run's returns, cost-model fields, and every output
  /// buffer — equal digests mean bit-identical results (the bench gate
  /// compares this against a direct deploy+run).
  std::string numerics_digest;

  // Per-stage wall-clock latencies, seconds.
  double queue_seconds = 0.0;   // admission to dequeue by a worker
  double deploy_seconds = 0.0;  // specialize (cache hit or lower/build)
  double run_seconds = 0.0;     // VM execution
  double total_seconds = 0.0;   // admission to completion

  /// Global completion order (1, 2, ...) — the observable the priority
  /// tests and request logs sort by.
  std::uint64_t completion_seq = 0;
};

/// Deterministic digest of a run's numeric outcome: returns, cost-model
/// counters, modeled time, and the contents of every workload buffer
/// after the run. Two executions are bit-identical iff digests match.
std::string numerics_digest(const vm::RunResult& run,
                            const vm::Workload& workload);

struct GatewayOptions {
  /// Worker threads executing requests (0 = hardware concurrency). The
  /// gateway's workers are the fan-out; the inner scheduler/farm pools
  /// are left at 1 thread unless explicitly set.
  std::size_t worker_threads = 0;
  /// Admitted-but-not-started bound, clamped to >= 1 (a zero bound
  /// would make blocking submission unsatisfiable). At the bound,
  /// submit() blocks (backpressure) or, with reject_on_full, completes
  /// the future immediately with an error.
  std::size_t max_queue = 256;
  bool reject_on_full = false;
  /// Shards of the owned registry.
  std::size_t registry_shards = 16;
  /// Persistent artifact store directory. When non-empty the gateway
  /// owns an ArtifactStore rooted there and installs it as the disk tier
  /// under both specialization caches and the farm's TU caches — a
  /// restarted gateway pointed at a populated directory serves its first
  /// fleet with zero recompiles (bench/warm_start.cpp). Empty = no
  /// persistence (the seed behavior).
  std::string artifact_dir;
  /// Byte budget for the artifact store (0 = unlimited).
  std::uint64_t artifact_max_bytes = 0;
  /// Remote-registry membership (service/distribution.hpp): when
  /// non-null — and artifact_dir names a store — the gateway registers a
  /// DistributionPeer on this fabric and installs the remote tier under
  /// both caches, so cold keys pull from ring peers before building and
  /// fresh builds are announced for gossip pre-warming. Borrowed — the
  /// fabric must outlive the gateway.
  DistributionFabric* distribution = nullptr;
  /// This gateway's peer name on the fabric (the Cluster passes its
  /// shard name); defaults to "gateway" when empty.
  std::string distribution_name;
  /// Forwarded to the owned DeployScheduler / BuildFarm (their `threads`
  /// fields default to 1 here — see worker_threads; their
  /// `artifact_store` pointers are overwritten with the owned store).
  DeploySchedulerOptions scheduler;
  BuildFarmOptions farm;
  /// Retry policy for transient deploy/run failures (max_attempts = 1
  /// disables retries). A waiter that inherited a failing single-flight
  /// leader's result retries immediately without consuming an attempt.
  RetryPolicy retry;
  /// Per-fleet-node circuit breaker configuration.
  CircuitBreaker::Options breaker;
  /// Graceful degradation: shed new submissions (code Shed + retry_after
  /// hint, distinct from rejected) when the queue holds more than this
  /// fraction of max_queue. 0 (default) disables depth shedding.
  double shed_queue_fraction = 0.0;
  /// Shed when the failure rate over the trailing window exceeds this
  /// fraction. 0 (default) disables failure-rate shedding.
  double shed_failure_rate = 0.0;
  /// Completions required in the window before the failure-rate rule
  /// applies (avoids shedding on the first unlucky request).
  std::size_t shed_min_samples = 16;
  /// Failure-rate window length, seconds.
  double shed_window_seconds = 1.0;
  /// Weighted priority drain: after this many consecutive dequeues from
  /// one priority class, a worker offers the next lower class one
  /// dequeue before returning to the top — bounds starvation of low
  /// classes under a sustained high-priority stream. 0 (the default)
  /// keeps strict priority order (higher always drains first).
  std::size_t drain_quantum = 0;
};

/// The serving gateway. Owns the registry, the deploy services, the node
/// fleet, and the telemetry registry; serves submit() end to end.
///
/// Thread-safety: submit(), run_all(), snapshot(), queue_depth(), and
/// registry()/metrics() access are safe from any thread. scheduler() and
/// farm() expose the owned services for inspection (their const stats
/// accessors are safe concurrently); do not mutate them while the
/// gateway is serving.
/// Ownership: the Gateway owns everything it exposes — references
/// returned by registry()/scheduler()/farm()/metrics() are valid for the
/// gateway's lifetime. The destructor stops admission, drains every
/// queued request (their futures complete), and joins the workers.
///
/// Telemetry names reported (see docs/SERVICE.md "Telemetry"):
///   counters   gateway.{requests,admitted,rejected,shed,completed,failed,
///              backpressure_waits,retries,breaker_open,deadline_exceeded},
///              spec_cache.{hits,disk_hits,misses,deploy_failures},
///              tu_cache.{hits,disk_hits,compiles},
///              artifact_store.{disk_hits,disk_misses,writes,evictions,
///              verify_failures},
///              distribution.{blobs_in,bytes_in,blobs_out,bytes_out,
///              pushed_in,prewarm_fetches,lazy_fetches,verify_rejects}
///              (overlaid by snapshot() from this gateway's peer),
///              vm.{runs,instructions},
///              fault.<site> (via observe_fault_plan)
///              epoch.{swaps,deferred_frees} (RCU reclamation, overlaid
///              by snapshot() from the process-wide epoch domain)
///   gauges     gateway.queue_depth, gateway.in_flight
///   histograms gateway.{queue,deploy,run,total}_seconds,
///              spec_cache.lowering_seconds, tu_cache.compile_seconds
/// After the queue drains: requests == admitted + rejected + shed and
/// admitted == completed + failed == gateway.total_seconds count —
/// exactly, including across the per-class admission rings.
class Gateway {
public:
  explicit Gateway(std::vector<vm::NodeSpec> fleet,
                   GatewayOptions options = {});
  ~Gateway();

  Gateway(const Gateway&) = delete;
  Gateway& operator=(const Gateway&) = delete;

  /// Push an image into the gateway's registry (convenience passthrough).
  std::string push(const container::Image& image,
                   const std::string& reference) {
    return registry_.push(image, reference);
  }

  /// Submit one request; the future completes when the request finishes
  /// (also on failure/rejection — never check .valid(), check .ok).
  std::future<RunResult> submit(RunRequest request);

  /// Submit a batch and wait; results are returned in request order.
  std::vector<RunResult> run_all(std::vector<RunRequest> requests);

  /// Submit a batch without ever blocking the caller: a request that
  /// would wait for queue space is shed (code Shed + retry_after hint)
  /// instead, so an overload spike degrades to a partial batch rather
  /// than a stalled client. Futures are returned in request order.
  std::vector<std::future<RunResult>> submit_batch(
      std::vector<RunRequest> requests);

  /// The circuit breaker guarding fleet()[index] (exposed for tests).
  const CircuitBreaker& node_breaker(std::size_t index) const {
    return *breakers_[index];
  }

  /// Mirror the plan's injected faults into this gateway's metrics as
  /// "fault.<site>" counters. Call before serving under the plan.
  void observe_fault_plan(fault::FaultPlan& plan);

  /// Admitted-but-not-started requests right now.
  std::size_t queue_depth() const;

  /// Point-in-time view of every metric, including the process-wide
  /// epoch-reclamation counters (epoch.swaps, epoch.deferred_frees).
  telemetry::MetricsSnapshot snapshot() const;
  /// Text render of snapshot() (what the demo and benches print).
  std::string render_telemetry() const { return snapshot().render(); }

  ShardedRegistry& registry() { return registry_; }
  telemetry::MetricsRegistry& metrics() { return metrics_; }
  DeployScheduler& scheduler() { return scheduler_; }
  BuildFarm& farm() { return farm_; }
  const std::vector<vm::NodeSpec>& fleet() const { return fleet_; }
  /// The owned persistent store, or nullptr when artifact_dir was empty.
  ArtifactStore* artifact_store() { return artifact_store_.get(); }
  /// This gateway's registry peer, or nullptr when no fabric was given.
  DistributionPeer* distribution() { return peer_.get(); }

private:
  using Clock = std::chrono::steady_clock;

  struct Job {
    RunRequest request;
    std::promise<RunResult> promise;
    Clock::time_point admitted;
    /// Admission sequence number; seeds the per-request backoff jitter.
    std::uint64_t seq = 0;
  };

  /// Per-node in-flight count, cache-line-padded (routing reads all,
  /// workers write their own).
  struct alignas(64) NodeLoad {
    std::atomic<int> active{0};
  };

  /// One bounded MPMC ring per priority value, FIFO within the class.
  /// Classes are created on demand, owned forever (class_storage_), and
  /// published to workers through an RCU snapshot sorted by descending
  /// priority — admission and drain never take a queue-wide lock.
  struct ClassRing {
    ClassRing(std::int64_t priority_, std::size_t capacity)
        : priority(priority_), ring(capacity) {}
    const std::int64_t priority;
    common::MpmcRing<Job> ring;
  };
  using ClassTable = std::vector<ClassRing*>;

  /// Per-worker weighted-drain state (see GatewayOptions::drain_quantum).
  struct DrainState {
    std::int64_t last_priority = 0;
    std::size_t streak = 0;
  };

  /// Routing-epoch view of the breaker fleet: `open` nodes cooling until
  /// `open_until` are skipped by route() without consulting the live
  /// breaker, so one pass sees load and breaker state from the same
  /// snapshot (a node can never be selected after its breaker opened in
  /// the same pass).
  struct RouteTable {
    struct Node {
      bool open = false;
      Clock::time_point open_until{};
    };
    std::vector<Node> nodes;
  };

  void worker_loop();
  std::future<RunResult> submit_impl(RunRequest request, bool never_block);
  /// Ring for `priority`, creating (and publishing) the class on first use.
  common::MpmcRing<Job>* ring_for(std::int64_t priority);
  /// Pop the next job honoring priority order (strict, or weighted when
  /// drain_quantum > 0). Lock-free: pins the class table and scans.
  bool try_dequeue(Job& out, DrainState& drain);
  /// Publish a node's breaker transition into the routing snapshot.
  void publish_route_state(std::size_t node_index, bool open,
                           Clock::time_point open_until);
  /// Fleet index serving this request, or -1 when none is available.
  /// `any_compatible` (when non-null) reports whether a compatible node
  /// exists at all — false means the request can never be served
  /// (architecture/march mismatch), true with -1 means every compatible
  /// node's breaker is open right now (transient).
  int route(const container::Image& image, const RunRequest& request,
            Clock::time_point now, bool* any_compatible);
  RunResult execute(RunRequest& request, Clock::time_point admitted,
                    std::uint64_t seq);
  /// Sleep-and-continue decision after a transient failure: returns true
  /// when a retry was granted (counting gateway.retries), false when the
  /// attempt budget or deadline is spent (out.code/error are then final).
  bool backoff_for_retry(RunResult& out, ErrorCode code,
                         const std::string& error, int charged_attempts,
                         std::uint64_t jitter_seed, const Deadline& deadline,
                         bool immediate);
  RunResult reject(RunRequest& request, ErrorCode code,
                   const std::string& reason, double retry_after = 0.0);
  RunResult shed(const RunRequest& request, double retry_after);
  /// Whether admission should shed right now (queue fraction or trailing
  /// failure rate over threshold). Lock-free.
  bool should_shed() const;
  /// Estimated queue drain time — the retry_after hint. Lock-free.
  double retry_after_hint() const;
  /// Feed the failure-rate window and the service-time EMA.
  void record_completion(bool ok, double total_seconds);
  void finish(Job job, RunResult result);

  GatewayOptions options_;
  std::vector<vm::NodeSpec> fleet_;

  // metrics_ precedes the services so the observers installed on their
  // caches (which reference these instruments) die after the services.
  telemetry::MetricsRegistry metrics_;
  telemetry::Counter* requests_ = nullptr;
  telemetry::Counter* admitted_ = nullptr;
  telemetry::Counter* rejected_ = nullptr;
  telemetry::Counter* shed_ = nullptr;
  telemetry::Counter* completed_ = nullptr;
  telemetry::Counter* failed_ = nullptr;
  telemetry::Counter* backpressure_waits_ = nullptr;
  telemetry::Counter* retries_ = nullptr;
  telemetry::Counter* breaker_open_ = nullptr;
  telemetry::Counter* deadline_exceeded_ = nullptr;
  telemetry::Counter* vm_runs_ = nullptr;
  telemetry::Counter* vm_instructions_ = nullptr;
  telemetry::Gauge* queue_depth_ = nullptr;
  telemetry::Gauge* in_flight_ = nullptr;
  telemetry::Histogram* queue_hist_ = nullptr;
  telemetry::Histogram* deploy_hist_ = nullptr;
  telemetry::Histogram* run_hist_ = nullptr;
  telemetry::Histogram* total_hist_ = nullptr;

  // Constructed before (so destroyed after) the services whose caches
  // hold tier adapters over it.
  std::unique_ptr<ArtifactStore> artifact_store_;
  // After the store (the peer serves out of it), before the services
  // (their distribution tiers borrow the peer). Registered on the fabric
  // for its whole lifetime; the Cluster quiesces cross-gateway traffic
  // (joins its dispatchers) before any gateway dies.
  std::unique_ptr<DistributionPeer> peer_;
  ShardedRegistry registry_;
  BuildFarm farm_;
  DeployScheduler scheduler_;
  std::vector<std::unique_ptr<NodeLoad>> load_;
  /// One breaker per fleet node (same indexing as fleet_/load_).
  std::vector<std::unique_ptr<CircuitBreaker>> breakers_;
  /// Epoch-snapshotted breaker view consumed by route() (see RouteTable).
  common::rcu::Snapshot<RouteTable> route_table_;
  // Hot independently-written atomics, each on its own cache line so a
  // routing scan, a completion, and an admission never false-share.
  alignas(64) std::atomic<std::uint64_t> route_rr_{0};
  alignas(64) std::atomic<std::uint64_t> completion_seq_{0};
  alignas(64) std::atomic<std::uint64_t> next_seq_{0};
  /// Admitted-but-not-started count: the ticket that enforces max_queue
  /// across all class rings (incremented before push, decremented after
  /// pop — so no ring can ever be offered more than its capacity).
  alignas(64) std::atomic<std::size_t> queued_{0};

  // Trailing failure-rate window (load shedding) + service-time EMA (the
  // retry_after hint). All relaxed atomics: shedding is advisory.
  std::atomic<std::int64_t> window_start_nanos_{0};
  std::atomic<std::uint64_t> window_total_{0};
  std::atomic<std::uint64_t> window_failed_{0};
  std::atomic<std::uint64_t> service_ema_bits_{0};  // bit_cast<double>

  /// Class-ring ownership: rings are created on demand, never freed
  /// while the gateway lives (workers hold raw pointers via the pinned
  /// ClassTable snapshot). class_mutex_ serializes creation only —
  /// admission and drain go through class_table_ lock-free.
  std::mutex class_mutex_;
  std::vector<std::unique_ptr<ClassRing>> class_storage_;
  common::rcu::Snapshot<ClassTable> class_table_;

  /// Sleep/wake plumbing only — never guards queue state. Producers and
  /// consumers touch it solely to publish "something changed" to a
  /// blocked peer (acquired empty before notify so wakeups can't be
  /// lost); the job handoff itself is the lock-free ring.
  std::mutex wait_mutex_;
  std::condition_variable cv_workers_;  // a job was pushed / stopping
  std::condition_variable cv_space_;    // a job was popped / stopping
  std::atomic<bool> stop_{false};

  std::vector<std::thread> workers_;  // last member: started after, joined in dtor
};

}  // namespace xaas::service
