#include "service/sharded_registry.hpp"

#include <algorithm>
#include <mutex>

#include "common/hashing.hpp"
#include "common/strings.hpp"

namespace xaas::service {

ShardedRegistry::ShardedRegistry(std::size_t shard_count) {
  shard_count = std::max<std::size_t>(1, shard_count);
  blob_shards_.reserve(shard_count);
  tag_shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    blob_shards_.push_back(std::make_unique<BlobShard>());
    tag_shards_.push_back(std::make_unique<TagShard>());
  }
}

ShardedRegistry::BlobShard& ShardedRegistry::blob_shard_for(
    const std::string& digest) {
  return *blob_shards_[common::shard_index(digest, blob_shards_.size())];
}

const ShardedRegistry::BlobShard& ShardedRegistry::blob_shard_for(
    const std::string& digest) const {
  return *blob_shards_[common::shard_index(digest, blob_shards_.size())];
}

ShardedRegistry::TagShard& ShardedRegistry::tag_shard_for(
    const std::string& reference) {
  return *tag_shards_[common::shard_index(reference, tag_shards_.size())];
}

const ShardedRegistry::TagShard& ShardedRegistry::tag_shard_for(
    const std::string& reference) const {
  return *tag_shards_[common::shard_index(reference, tag_shards_.size())];
}

std::string ShardedRegistry::push(const container::Image& image,
                                  const std::string& reference) {
  return push(std::make_shared<const container::Image>(image), reference);
}

std::string ShardedRegistry::push(
    std::shared_ptr<const container::Image> image,
    const std::string& reference) {
  const std::string digest = image->digest();
  {
    BlobShard& shard = blob_shard_for(digest);
    std::unique_lock lock(shard.mutex);
    // Idempotent: identical content keeps the first blob (digests are
    // content addresses, so the images are interchangeable).
    shard.images.emplace(digest, std::move(image));
  }
  {
    TagShard& shard = tag_shard_for(reference);
    std::unique_lock lock(shard.mutex);
    shard.tags[reference] = digest;
  }
  return digest;
}

std::optional<std::string> ShardedRegistry::resolve(
    const std::string& reference_or_digest) const {
  std::string digest = reference_or_digest;
  {
    const TagShard& shard = tag_shard_for(reference_or_digest);
    std::shared_lock lock(shard.mutex);
    const auto it = shard.tags.find(reference_or_digest);
    if (it != shard.tags.end()) digest = it->second;
  }
  const BlobShard& shard = blob_shard_for(digest);
  std::shared_lock lock(shard.mutex);
  if (!shard.images.count(digest)) return std::nullopt;
  return digest;
}

std::shared_ptr<const container::Image> ShardedRegistry::pull(
    const std::string& reference_or_digest) const {
  const auto digest = resolve(reference_or_digest);
  if (!digest) return nullptr;
  const BlobShard& shard = blob_shard_for(*digest);
  std::shared_lock lock(shard.mutex);
  const auto it = shard.images.find(*digest);
  return it == shard.images.end() ? nullptr : it->second;
}

std::optional<std::string> ShardedRegistry::annotation(
    const std::string& reference, const std::string& key) const {
  const auto image = pull(reference);  // shares ownership, no layer copy
  if (!image) return std::nullopt;
  const auto it = image->annotations.find(key);
  if (it == image->annotations.end()) return std::nullopt;
  return it->second;
}

std::vector<std::string> ShardedRegistry::tags() const {
  std::vector<std::string> out;
  for (const auto& shard : tag_shards_) {
    std::shared_lock lock(shard->mutex);
    for (const auto& [reference, _] : shard->tags) out.push_back(reference);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> ShardedRegistry::tags_for_architecture(
    const std::string& arch) const {
  std::vector<std::string> out;
  for (const auto& shard : tag_shards_) {
    std::vector<std::pair<std::string, std::string>> entries;
    {
      std::shared_lock lock(shard->mutex);
      entries.assign(shard->tags.begin(), shard->tags.end());
    }
    for (const auto& [reference, digest] : entries) {
      const auto image = pull(digest);
      if (image && image->architecture == arch) out.push_back(reference);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t ShardedRegistry::image_count() const {
  std::size_t count = 0;
  for (const auto& shard : blob_shards_) {
    std::shared_lock lock(shard->mutex);
    count += shard->images.size();
  }
  return count;
}

}  // namespace xaas::service
