#include "service/sharded_registry.hpp"

#include <algorithm>
#include <utility>

namespace xaas::service {

ShardedRegistry::ShardedRegistry(std::size_t shard_count)
    : shard_count_(std::max<std::size_t>(1, shard_count)) {}

std::string ShardedRegistry::push(const container::Image& image,
                                  const std::string& reference) {
  return push(std::make_shared<const container::Image>(image), reference);
}

std::string ShardedRegistry::push(
    std::shared_ptr<const container::Image> image,
    const std::string& reference) {
  const std::string digest = image->digest();
  state_.update([&](State& state) {
    // Idempotent: identical content keeps the first blob (digests are
    // content addresses, so the images are interchangeable).
    const auto [blob_it, _] = state.images.emplace(digest, std::move(image));
    state.tags[reference] = digest;
    // Point the read index at the stored blob (not the argument), so a
    // re-push of identical content keeps sharing the first blob.
    state.by_ref[reference] = blob_it->second;
  });
  return digest;
}

std::optional<std::string> ShardedRegistry::resolve(
    const std::string& reference_or_digest) const {
  const auto state = state_.read();
  std::string digest = reference_or_digest;
  const auto tag_it = state->tags.find(reference_or_digest);
  if (tag_it != state->tags.end()) digest = tag_it->second;
  if (!state->images.count(digest)) return std::nullopt;
  return digest;
}

std::shared_ptr<const container::Image> ShardedRegistry::pull(
    const std::string& reference_or_digest) const {
  const auto state = state_.read();
  // Hot path: pull by tag is one probe of the denormalized index.
  const auto ref_it = state->by_ref.find(reference_or_digest);
  if (ref_it != state->by_ref.end()) return ref_it->second;
  // Digest (or unknown reference): fall back to the content store.
  const auto it = state->images.find(reference_or_digest);
  return it == state->images.end() ? nullptr : it->second;
}

std::optional<std::string> ShardedRegistry::annotation(
    const std::string& reference, const std::string& key) const {
  const auto image = pull(reference);  // shares ownership, no layer copy
  if (!image) return std::nullopt;
  const auto it = image->annotations.find(key);
  if (it == image->annotations.end()) return std::nullopt;
  return it->second;
}

std::vector<std::string> ShardedRegistry::tags() const {
  const auto state = state_.read();
  std::vector<std::string> out;
  out.reserve(state->tags.size());
  for (const auto& [reference, _] : state->tags) out.push_back(reference);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> ShardedRegistry::tags_for_architecture(
    const std::string& arch) const {
  const auto state = state_.read();
  std::vector<std::string> out;
  for (const auto& [reference, image] : state->by_ref) {
    if (image->architecture == arch) out.push_back(reference);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t ShardedRegistry::image_count() const {
  return state_.read()->images.size();
}

}  // namespace xaas::service
