// Serving-layer telemetry: a lock-cheap metrics registry the Gateway and
// the existing scheduler/farm/caches report into.
//
// The paper's end state is a *service* (§2, §7): users submit work, the
// platform specializes and runs it. A service needs to answer "what is
// the fleet doing right now" without perturbing the hot path, so every
// instrument here is wait-free on the write side:
//  - Counter: monotonic, striped over cache-line-padded atomics so
//    concurrent writers on different threads do not bounce one line;
//  - Gauge: a single signed atomic (current value, e.g. queue depth);
//  - Histogram: fixed log-ladder buckets of atomic counts plus exact
//    count/sum/max — one relaxed increment per observation.
//
// MetricsRegistry hands out stable references; callers resolve a metric
// once (at construction) and never touch the registry lock again.
// snapshot() assembles a point-in-time view; render() formats it as the
// text block benches and the demo print.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

namespace xaas::service::telemetry {

/// Monotonic counter, striped to keep concurrent writers off one cache
/// line.
///
/// Thread-safety: add() and value() are safe from any thread (add is a
/// relaxed fetch_add on the caller's stripe; value() sums stripes and is
/// monotonic but not an atomic snapshot across stripes).
/// Ownership: owned by a MetricsRegistry; references handed out by
/// counter() are stable for the registry's lifetime.
class Counter {
public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t n = 1) noexcept {
    cells_[stripe()].v.fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& cell : cells_) {
      total += cell.v.load(std::memory_order_relaxed);
    }
    return total;
  }

private:
  static constexpr std::size_t kStripes = 16;
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };

  /// Stripe index of the calling thread: assigned round-robin on first
  /// use, so a pool of N workers spreads over min(N, kStripes) lines.
  static std::size_t stripe() noexcept;

  std::array<Cell, kStripes> cells_;
};

/// Current-value instrument (queue depth, in-flight requests).
///
/// Thread-safety: add() and value() are safe from any thread.
/// Ownership: owned by a MetricsRegistry (stable references, as Counter).
class Gauge {
public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void add(std::int64_t delta) noexcept {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

private:
  // Cache-line padded: hot gauges (queue_depth, in_flight) are bumped
  // from every worker and must not false-share with their registry
  // neighbors.
  alignas(64) std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket latency histogram over a 1-2-5 ladder from 1 µs to 60 s
/// plus an overflow bucket. An observation lands in the first bucket
/// whose upper bound is >= the value (Prometheus "le" semantics).
///
/// Thread-safety: observe() is one relaxed increment per atomic touched;
/// readers see a monotonic (not cross-field-consistent) view — exact
/// consistency is asserted only after quiescence, which is how the tests
/// and bench use it.
/// Ownership: owned by a MetricsRegistry (stable references, as Counter).
class Histogram {
public:
  /// Finite upper bounds, seconds, ascending; the implicit last bucket
  /// is +inf.
  static const std::vector<double>& upper_bounds();
  static constexpr std::size_t kBucketCount = 25;  // 24 finite + overflow

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(double seconds) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum_seconds() const noexcept {
    return static_cast<double>(sum_nanos_.load(std::memory_order_relaxed)) *
           1e-9;
  }
  double max_seconds() const noexcept {
    return static_cast<double>(max_nanos_.load(std::memory_order_relaxed)) *
           1e-9;
  }
  std::uint64_t bucket_count(std::size_t bucket) const noexcept {
    return buckets_[bucket].load(std::memory_order_relaxed);
  }

private:
  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_nanos_{0};
  std::atomic<std::uint64_t> max_nanos_{0};
};

/// Point-in-time copy of one histogram.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum_seconds = 0.0;
  double max_seconds = 0.0;
  /// (upper bound seconds, observations <= bound in this bucket); the
  /// final entry's bound is +inf.
  std::vector<std::pair<double, std::uint64_t>> buckets;

  double mean_seconds() const {
    return count == 0 ? 0.0 : sum_seconds / static_cast<double>(count);
  }

  /// Conservative quantile estimate: the upper bound of the first bucket
  /// whose cumulative count reaches q * count (the true q-quantile is <=
  /// this value). Observations in the overflow bucket report the exact
  /// observed max instead of +inf. 0 when the histogram is empty.
  double quantile_upper_seconds(double q) const;
};

/// Point-in-time copy of every registered metric.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Counter value by name; 0 when the counter was never registered.
  std::uint64_t counter(const std::string& name) const;
  /// Gauge value by name; 0 when absent.
  std::int64_t gauge(const std::string& name) const;

  /// Human-readable text block: counters/gauges as "name value" lines,
  /// histograms as "name count/mean/max" plus non-empty buckets.
  std::string render() const;
};

/// Named metric registry.
///
/// Thread-safety: counter()/gauge()/histogram() are safe from any thread
/// (shared_mutex read path for existing names, exclusive only on first
/// registration) and return references that remain valid and wait-free
/// for the registry's lifetime — resolve once, then report lock-free.
/// snapshot() is safe concurrently with writers.
/// Ownership: owns every instrument; typically owned by the Gateway and
/// borrowed (as plain references) by the observers it installs on the
/// scheduler/farm/caches.
class MetricsRegistry {
public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  MetricsSnapshot snapshot() const;
  std::string render() const { return snapshot().render(); }

private:
  template <typename T>
  T& get_or_create(std::map<std::string, std::unique_ptr<T>>& map,
                   const std::string& name);

  mutable std::shared_mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace xaas::service::telemetry
