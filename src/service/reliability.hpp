// Reliability primitives for the serving plane: machine-readable error
// codes, retry backoff, request deadlines, and a per-node three-state
// circuit breaker. The Gateway wires these through its
// route → deploy → run pipeline (gateway.cpp); docs/SERVICE.md
// "Reliability" documents the semantics end to end.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string_view>

namespace xaas::service {

/// Machine-readable completion classification for RunResult (and failure
/// classification for FleetDeployResult). Ok iff the request succeeded;
/// everything else names the stage that gave up, so clients branch on
/// the code instead of parsing error strings.
enum class ErrorCode {
  Ok = 0,
  /// Admission rejected: queue at its bound (reject_on_full). Retryable;
  /// retry_after_seconds carries the backoff hint.
  QueueFull,
  /// Load-shed at admission (queue depth or failure rate over the shed
  /// threshold). Retryable; retry_after_seconds set.
  Shed,
  /// The gateway is stopping; resubmit elsewhere.
  ShuttingDown,
  /// Image reference unknown to the registry. Not retryable.
  NotFound,
  /// No fleet node can ever serve this request (architecture or explicit
  /// march mismatch). Not retryable.
  NoCompatibleNode,
  /// Compatible nodes exist but every breaker is open. Retryable.
  NodesUnavailable,
  /// Specialize/build failed and the retry budget is spent.
  DeployFailed,
  /// Execution failed on every attempted node.
  RunFailed,
  /// The request's deadline budget ran out (in queue, before deploy,
  /// before run, or before a backoff sleep).
  DeadlineExceeded,
  /// The tenant's token-bucket quota is exhausted (cluster admission —
  /// see service/cluster.hpp). Retryable; retry_after_seconds carries
  /// the bucket's refill wait and is always > 0.
  QuotaExceeded,
};

std::string_view to_string(ErrorCode code);
/// Whether a client could plausibly succeed by resubmitting later.
bool is_retryable(ErrorCode code);

/// Exponential backoff with deterministic jitter for transient
/// deploy/build/store failures. backoff_seconds() is a pure function of
/// (attempt, seed): reproducible for a fixed admission order, decorrelated
/// across requests (the Gateway seeds with the admission sequence number).
struct RetryPolicy {
  /// Total attempts (first try included). 1 disables retries.
  int max_attempts = 4;
  double initial_backoff_seconds = 0.0005;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 0.025;
  /// Jitter fraction in [0, 1]: the sleep is uniform in
  /// [backoff * (1 - jitter), backoff].
  double jitter = 0.5;

  /// Sleep before retrying after `failed_attempt` (1-based) failed.
  double backoff_seconds(int failed_attempt, std::uint64_t seed) const;
};

/// A request deadline: an absolute budget fixed at admission. Stages
/// check expired() before starting work; a stage never preempts work in
/// flight (runs are short — the check granularity is one stage).
class Deadline {
public:
  using Clock = std::chrono::steady_clock;

  Deadline() = default;  // no deadline: never expires

  static Deadline after(double budget_seconds, Clock::time_point from) {
    Deadline d;
    d.active_ = true;
    d.at_ = from + std::chrono::duration_cast<Clock::duration>(
                       std::chrono::duration<double>(budget_seconds));
    return d;
  }

  bool active() const { return active_; }
  bool expired(Clock::time_point now) const { return active_ && now >= at_; }
  /// Seconds left (negative when past due); meaningless when !active().
  double remaining_seconds(Clock::time_point now) const {
    return std::chrono::duration<double>(at_ - now).count();
  }

private:
  bool active_ = false;
  Clock::time_point at_{};
};

/// Three-state circuit breaker guarding one fleet node.
///
///             failure_threshold consecutive failures
///   Closed ──────────────────────────────────────────> Open
///     ^                                                  │
///     │ probe succeeds                   open_seconds    │
///     │                                    elapsed       v
///   HalfOpen <────────────────────────────────────── (cooling)
///     │
///     └── probe fails ──> Open again (counts another trip)
///
/// Closed admits everything (the hot path is one acquire load — no
/// lock); Open admits nothing until open_seconds elapse; HalfOpen admits
/// up to half_open_probes requests, whose outcome closes or re-opens the
/// breaker.
///
/// Thread-safety: all methods are safe from any thread; transitions
/// serialize on an internal mutex, the Closed fast path does not touch
/// it.
class alignas(64) CircuitBreaker {
public:
  using Clock = std::chrono::steady_clock;
  enum class State { Closed, Open, HalfOpen };

  struct Options {
    /// Consecutive failures that trip Closed -> Open.
    int failure_threshold = 3;
    /// Cooling period before Open admits a probe.
    double open_seconds = 0.05;
    /// Concurrent probes admitted while HalfOpen.
    int half_open_probes = 1;
  };

  CircuitBreaker() : CircuitBreaker(Options{}) {}
  explicit CircuitBreaker(Options options) : options_(options) {}

  CircuitBreaker(const CircuitBreaker&) = delete;
  CircuitBreaker& operator=(const CircuitBreaker&) = delete;

  /// Whether a request may be routed here now (grants a probe slot when
  /// HalfOpen).
  bool allow(Clock::time_point now);
  void record_success();
  /// Returns true when THIS failure tripped the breaker open (from
  /// Closed via the threshold, or a failed HalfOpen probe) — the
  /// caller's cue to count a breaker_open event. trips() counts the
  /// same transitions.
  bool record_failure(Clock::time_point now);

  State state() const { return state_.load(std::memory_order_acquire); }
  std::uint64_t trips() const { return trips_.load(std::memory_order_relaxed); }

private:
  const Options options_;
  std::atomic<State> state_{State::Closed};
  std::atomic<int> consecutive_failures_{0};
  std::atomic<std::uint64_t> trips_{0};

  std::mutex mutex_;  // guards transitions + the fields below
  int probes_granted_ = 0;
  Clock::time_point open_until_{};
};

}  // namespace xaas::service
