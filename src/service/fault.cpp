#include "service/fault.hpp"

#include "common/hashing.hpp"

namespace xaas::service::fault {

std::atomic<FaultPlan*> FaultInjector::active_{nullptr};

namespace {

/// SplitMix64 finalizer: the same mixer common::Rng steps with, used
/// here as a stateless hash so a fault decision is a pure function of
/// (seed, site, key, evaluation index).
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double unit_double(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

void FaultPlan::set_probability(std::string_view site, double probability) {
  if (probability < 0.0) probability = 0.0;
  if (probability > 1.0) probability = 1.0;
  probabilities_[std::string(site)] = probability;
}

void FaultPlan::crash_node(std::string node_name) {
  crashed_nodes_.insert(std::move(node_name));
}

void FaultPlan::record_injection(std::string_view site) {
  {
    std::lock_guard lock(mutex_);
    ++injected_[std::string(site)];
  }
  // Outside the lock: the observer typically bumps a telemetry counter
  // and must never re-enter the plan while it holds the mutex.
  if (observer_) observer_(site);
}

bool FaultPlan::fires(std::string_view site, std::string_view key) {
  const auto it = probabilities_.find(site);
  if (it == probabilities_.end() || it->second <= 0.0) return false;
  const double probability = it->second;

  std::uint64_t index;
  {
    std::lock_guard lock(mutex_);
    std::string counter_key(site);
    counter_key.push_back('\x1f');
    counter_key.append(key);
    index = hits_[counter_key]++;
  }
  // The decision depends only on (seed, site, key, index) — never on
  // which thread asked or in what global order — so identical seeds
  // reproduce identical per-key fault schedules.
  const std::uint64_t h =
      mix(seed_ ^ mix(common::fnv1a_64(site) ^ mix(common::fnv1a_64(key) ^
                                                   index)));
  if (probability < 1.0 && unit_double(h) >= probability) return false;
  record_injection(site);
  return true;
}

bool FaultPlan::node_crashed(const std::string& node_name) {
  if (crashed_nodes_.find(node_name) == crashed_nodes_.end()) return false;
  record_injection(kNodeCrash);
  return true;
}

bool FaultPlan::maybe_corrupt(std::string_view site, std::string_view key,
                              std::string& bytes) {
  if (bytes.empty() || !fires(site, key)) return false;
  // Deterministic position, guaranteed to change the byte (XOR).
  const std::uint64_t h = mix(seed_ ^ common::fnv1a_64(key));
  bytes[static_cast<std::size_t>(h % bytes.size())] ^= 0x20;
  return true;
}

std::uint64_t FaultPlan::injected(std::string_view site) const {
  std::lock_guard lock(mutex_);
  const auto it = injected_.find(std::string(site));
  return it == injected_.end() ? 0 : it->second;
}

std::uint64_t FaultPlan::total_injected() const {
  std::lock_guard lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [site, count] : injected_) total += count;
  return total;
}

std::map<std::string, std::uint64_t> FaultPlan::injected_by_site() const {
  std::lock_guard lock(mutex_);
  return injected_;
}

}  // namespace xaas::service::fault
