// Persistent content-addressed artifact store: the on-disk tier under the
// serving caches.
//
// The paper's premise is that specialized builds are *reusable artifacts*
// pushed to and pulled from a registry — yet the SpecializationCache and
// minicc::CompileCache are process-lifetime maps, so every gateway
// restart repaid the full heterogeneous-fleet build cost. This store
// closes that gap, in the spirit of ccache/sccache TU caching and OCI
// layer digests (§5.2): both whole-deployment specializations and
// individual compiled TUs persist under their existing canonical cache
// keys, and a restarted gateway warm-starts from disk with zero
// recompiles and bit-identical numerics (bench/warm_start.cpp).
//
// Layout under the store root:
//
//   objects/<d0d1>/<d2d3>/<digest>   blob; digest = sha256(kind \x1f key)
//   index.json                       LRU clock + byte accounting
//
// Each blob is self-describing — a one-line JSON header (kind, key,
// payload sha256, payload size) followed by the raw payload — so the
// index is purely an acceleration structure: a store opened on a
// directory whose index.json is missing or stale (unclean shutdown)
// recovers every entry by scanning the fanout directories. Writes are
// atomic (unique temp file + rename), reads verify the payload's sha256
// and reject corrupt blobs as misses, and a byte budget evicts
// least-recently-used blobs.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "minicc/compile_cache.hpp"
#include "service/spec_cache.hpp"

namespace xaas::service {

/// Blob kinds the serving tiers persist. The kind participates in the
/// content address (blob_digest), so "spec" and "tu" blobs never collide
/// even for equal keys; the distribution layer uses the same constants
/// when it resolves a cache key to a wire digest.
inline constexpr std::string_view kSpecArtifactKind = "spec";
inline constexpr std::string_view kTuArtifactKind = "tu";

struct ArtifactStoreOptions {
  /// Root directory; created (with parents) if absent.
  std::string dir;
  /// Byte budget over blob file sizes; 0 = unlimited. Exceeding the
  /// budget on a write evicts least-recently-used blobs (never the one
  /// just written) until the total fits.
  std::uint64_t max_bytes = 0;
};

/// Content-addressed on-disk blob store with sha256-verified reads,
/// atomic writes, and byte-budgeted LRU eviction.
///
/// Thread-safety: put(), get(), note_corrupt(), flush_index(), and every
/// stats accessor are safe from any thread (one internal mutex — this is
/// the disk tier, not the hot path). Multiple ArtifactStore instances
/// (including in other processes) may share one directory: writes are
/// temp-file+rename atomic so readers never observe a partial blob, a
/// get() whose key is absent from the in-memory accounting still probes
/// the directory (so one store sees another's writes), and a blob
/// evicted underneath a reader degrades to a miss. set_observer() must
/// be called before the store starts serving.
/// Ownership: typically owned by the Gateway (or a test/bench) and
/// borrowed by the SpecArtifactTier / TuArtifactTier adapters installed
/// on the caches; must outlive every cache it backs.
class ArtifactStore {
public:
  /// One telemetry event per store operation of interest.
  struct Event {
    enum class Kind { DiskHit, DiskMiss, Write, Eviction, VerifyFailure };
    Kind kind;
    /// Blob bytes written (Write) or payload bytes served (DiskHit);
    /// 0 for the other kinds.
    std::uint64_t bytes = 0;
  };
  using Observer = std::function<void(const Event&)>;

  explicit ArtifactStore(ArtifactStoreOptions options);
  ~ArtifactStore();

  ArtifactStore(const ArtifactStore&) = delete;
  ArtifactStore& operator=(const ArtifactStore&) = delete;

  /// Persist `payload` under (kind, key). Returns false on I/O failure
  /// (the store is then simply not warm for this key — callers never
  /// fail a build over it). Overwrites an existing blob of the same key.
  bool put(std::string_view kind, std::string_view key,
           std::string_view payload);

  /// The payload previously persisted under (kind, key), or nullopt on
  /// miss. A blob whose header is malformed, whose recorded key does not
  /// match, or whose payload fails sha256 verification is deleted,
  /// counted as a verify failure, and reported as a miss — a corrupt
  /// blob can cost a recompile, never produce a wrong artifact. The
  /// deletion evicts the entry synchronously everywhere: blob file,
  /// in-memory accounting, AND the persisted LRU index, so no later
  /// recovery can resurrect the dead entry.
  std::optional<std::string> get(std::string_view kind, std::string_view key);

  /// Report a blob whose *payload* deserialized to garbage one level up
  /// (e.g. IR text that no longer parses): counts a verify failure and
  /// deletes the blob so the next request recompiles.
  void note_corrupt(std::string_view kind, std::string_view key);

  /// Persist the LRU index now (also done on every put/eviction and at
  /// destruction). Losing the index never loses blobs — see recovery.
  void flush_index();

  /// Install the telemetry observer (the Gateway points it at its
  /// MetricsRegistry). NOT thread-safe with concurrent operations: set
  /// it once, before the store starts serving.
  void set_observer(Observer observer) { observer_ = std::move(observer); }

  const std::string& dir() const { return options_.dir; }
  std::uint64_t max_bytes() const { return options_.max_bytes; }

  /// Entries currently accounted (after open-time directory scan).
  std::size_t entry_count() const;
  /// Total blob bytes currently accounted.
  std::uint64_t total_bytes() const;

  // Monotonic statistics since construction.
  std::size_t disk_hits() const { return disk_hits_.load(); }
  std::size_t disk_misses() const { return disk_misses_.load(); }
  std::size_t writes() const { return writes_.load(); }
  std::size_t evictions() const { return evictions_.load(); }
  std::size_t verify_failures() const { return verify_failures_.load(); }

  /// Path digest for (kind, key): sha256 over the '\x1f'-joined pair —
  /// collision-free for any component content (exposed for tests).
  static std::string blob_digest(std::string_view kind, std::string_view key);

  // ---- Blob-level registry surface (service/distribution.hpp) ------------
  //
  // The distribution protocol replicates *blobs* — the exact on-disk
  // bytes, one-line header plus payload — between stores; digests are
  // the wire currency and blobs stay self-describing in flight.

  /// One content-addressed blob as the replication protocol sees it.
  struct BlobRef {
    std::string digest;       // two-level-fanout address, sha256(kind\x1fkey)
    std::uint64_t bytes = 0;  // full blob size (header + payload)
  };

  /// Every blob currently accounted, digest-sorted (so manifests are
  /// deterministic). Touches neither the LRU clock nor hit/miss counters.
  std::vector<BlobRef> enumerate_blobs() const;

  /// Whether `digest` is present (accounted, or published on disk by a
  /// sibling store sharing the directory). Never counts a hit or a miss.
  bool contains_blob(const std::string& digest) const;

  /// Accounted blob size (header + payload) for `digest`, or 0 when the
  /// digest is not in this store's accounting.
  std::uint64_t blob_bytes(const std::string& digest) const;

  /// The raw blob bytes for `digest`, verified end-to-end, or nullopt.
  /// A blob failing verification is deleted and counted exactly as in
  /// get(); unlike get(), read_blob() never counts disk hits/misses —
  /// replication traffic must not skew the cache-tier statistics.
  std::optional<std::string> read_blob(const std::string& digest);

  /// Adopt a blob received from a peer: verify it end-to-end against
  /// `digest` first, then publish it atomically (counts as a write).
  /// Returns false when verification or the write fails; a rejected blob
  /// never touches the store — the *distribution* layer counts the
  /// rejection, store verify_failures only ever count corrupt blobs that
  /// were accepted here.
  bool adopt_blob(const std::string& digest, std::string_view blob);

  /// Structural verification of raw blob bytes against their content
  /// address: one-line JSON header, blob_digest(kind, key) == digest,
  /// recorded payload size and sha256 match the body.
  static bool verify_blob(const std::string& digest, std::string_view blob);

private:
  struct BlobInfo {
    std::uint64_t size = 0;       // blob file size (header + payload)
    std::uint64_t last_used = 0;  // logical LRU clock tick
  };

  std::string blob_path(const std::string& digest) const;
  /// Shared tail of put()/adopt_blob(): atomic write + accounting +
  /// eviction + periodic index flush, Write/Eviction notifications.
  bool publish_blob(const std::string& digest, std::string_view blob);
  /// Scan objects/ and merge with index.json (locked by caller).
  void recover_locked();
  /// Returns the number of blobs evicted.
  std::size_t evict_to_budget_locked(const std::string& keep_digest);
  void write_index_locked();
  void remove_blob_locked(const std::string& digest, Event::Kind why);
  void notify(Event::Kind kind, std::uint64_t bytes = 0) const;

  ArtifactStoreOptions options_;
  Observer observer_;  // set once before serving; called outside mutex_

  /// Puts between index flushes (the index is an LRU accelerator, not
  /// the source of truth — see recovery).
  static constexpr std::uint64_t kIndexFlushInterval = 32;

  mutable std::mutex mutex_;
  std::map<std::string, BlobInfo> blobs_;  // digest -> accounting
  std::uint64_t total_bytes_ = 0;
  std::uint64_t clock_ = 0;
  std::uint64_t temp_seq_ = 0;  // unique temp-file suffix within this store
  std::uint64_t puts_since_index_flush_ = 0;

  std::atomic<std::size_t> disk_hits_{0};
  std::atomic<std::size_t> disk_misses_{0};
  std::atomic<std::size_t> writes_{0};
  std::atomic<std::size_t> evictions_{0};
  std::atomic<std::size_t> verify_failures_{0};
};

// ---- Artifact serialization ----------------------------------------------
//
// Whole deployments and compiled TUs serialize as JSON documents reusing
// the layers that already round-trip losslessly: container::Image::to_json
// for the derived image and ir::print/parse_ir for compiled modules
// (print(parse(print(m))) == print(m) is the IR container contract), so a
// reloaded deployment is bit-identical to the one that was stored.

/// MachineModule -> JSON (IR text + target + lowering counters).
common::Json machine_module_to_json(const minicc::MachineModule& machine);
/// Parse machine_module_to_json() output; nullopt (with `error` set) on
/// malformed documents.
std::optional<minicc::MachineModule> machine_module_from_json(
    const common::Json& doc, std::string* error);

/// Successful DeployedApp -> JSON (derived image, modules in link order,
/// configuration, target, log). The node name and decoded program are
/// not serialized: cache entries are node-agnostic and the decoded form
/// is rebuilt on load.
common::Json deployed_app_to_json(const DeployedApp& app);
/// Reconstruct a deployment: parse modules, re-link the program, verify
/// the recorded image digest, optionally pre-decode. Returns null (with
/// `error` set) when anything fails to parse, link, or verify.
std::shared_ptr<const DeployedApp> deployed_app_from_json(
    const common::Json& doc, bool predecode, std::string* error);

// ---- Cache tier adapters -------------------------------------------------

/// SpecializationCache disk tier over an ArtifactStore (kind "spec",
/// keyed by SpecKey::to_string()).
///
/// Thread-safety: load()/store() are safe from any thread (the store
/// serializes). Ownership: borrows the ArtifactStore, which must outlive
/// the adapter; owned by the service (farm/scheduler) whose cache it
/// backs.
class SpecArtifactTier : public SpecDiskTier {
public:
  explicit SpecArtifactTier(ArtifactStore& store, bool predecode = true)
      : store_(store), predecode_(predecode) {}

  std::shared_ptr<const DeployedApp> load(const SpecKey& key) override;
  void store(const SpecKey& key, const DeployedApp& app) override;

private:
  ArtifactStore& store_;
  bool predecode_;
};

/// CompileCache disk tier over an ArtifactStore (kind "tu", keyed by
/// TuKey::to_string()). TU artifacts are image-independent — the key's
/// post-preprocess hash pins the content — so deployments of different
/// source images share persisted TUs too.
///
/// Thread-safety / ownership: as SpecArtifactTier; one adapter serves
/// every per-image CompileCache of a BuildFarm.
class TuArtifactTier : public minicc::TuDiskTier {
public:
  explicit TuArtifactTier(ArtifactStore& store) : store_(store) {}

  std::shared_ptr<const minicc::MachineModule> load(
      const minicc::TuKey& key) override;
  void store(const minicc::TuKey& key,
             const minicc::MachineModule& machine) override;

private:
  ArtifactStore& store_;
};

}  // namespace xaas::service
