// Specialization cache (§4.3/§5.2): a fleet of identical
// microarchitectures pulling the same IR container must lower it once,
// not once per node. Entries are keyed by the tuple that fully determines
// a deployment — (IR image digest, canonicalized selections, resolved
// TargetSpec) — established by xaas::plan_ir_deploy: equal keys produce
// bit-identical deployed images and programs, so the cached DeployedApp
// (image + linked program + DecodedProgram) is shared by every requester.
//
// The cache is single-flight: concurrent requests for one key elect a
// single deployer; the rest block on its shared_future instead of
// duplicating the lowering.
//
// Steady-state hits are lock-free: successful deployments are also
// published into an RCU snapshot map (common/rcu.hpp) that get() and
// get_or_deploy() probe before touching any shard mutex. Only misses —
// which are bounded by the distinct-specialization count, not the
// request count — fall through to the single-flight slow path, so
// misses == lowerings and the disk-tier semantics are unchanged.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rcu.hpp"
#include "minicc/lower.hpp"
#include "xaas/source_container.hpp"

namespace xaas::service {

/// Cache key for one specialization. `digest` is the IR image content
/// digest; `selections` the canonical selection string
/// (common::canonical_selections); `target` the resolved (clamped)
/// lowering target.
struct SpecKey {
  std::string digest;
  std::string selections;
  minicc::TargetSpec target;

  /// Collision-free composite string (components joined with '\x1f').
  std::string to_string() const;

  friend bool operator==(const SpecKey& a, const SpecKey& b) {
    return a.digest == b.digest && a.selections == b.selections &&
           a.target.visa == b.target.visa &&
           a.target.openmp == b.target.openmp &&
           a.target.opt_level == b.target.opt_level;
  }
};

/// Field-wise hash so the lock-free read tier probes by SpecKey directly
/// — the hot (hit) path never materializes the composite string.
struct SpecKeyHash {
  std::size_t operator()(const SpecKey& key) const {
    std::size_t h = std::hash<std::string>{}(key.digest);
    const auto mix = [&h](std::size_t v) {
      h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    };
    mix(std::hash<std::string>{}(key.selections));
    mix(static_cast<std::size_t>(key.target.visa));
    mix(static_cast<std::size_t>(key.target.openmp));
    mix(static_cast<std::size_t>(key.target.opt_level));
    return h;
  }
};

/// Optional persistent second tier under the in-memory cache: the
/// serving layer's ArtifactStore adapters implement this. load() returns
/// a previously persisted deployment (or null), store() persists a
/// successful one. Implementations must be safe to call from any thread
/// and must never throw (a failing disk tier degrades to a miss).
/// Because only the elected single-flight leader consults this tier, an
/// implementation may stack further levels beneath the local disk — the
/// SpecDistributionTier (service/distribution.hpp) pulls from remote
/// registry peers here, and exactly one fetch happens per cold key.
class SpecDiskTier {
public:
  virtual ~SpecDiskTier() = default;
  virtual std::shared_ptr<const DeployedApp> load(const SpecKey& key) = 0;
  virtual void store(const SpecKey& key, const DeployedApp& app) = 0;
};

/// Single-flight whole-deployment cache, with an optional persistent
/// second tier (memory hit → disk hit → miss/deploy; the single-flight
/// election spans all tiers, so concurrent requests for one key consult
/// the disk and deploy at most once).
///
/// Thread-safety: get_or_deploy(), get(), clear(), entry_count(), and
/// the stats accessors are safe from any thread; entries live in sharded
/// mutex-protected maps and concurrent requests for one key elect
/// exactly one deployer (the rest block on its shared_future). The only
/// exception is set_observer()/set_disk_tier(), which must be called
/// before the cache starts serving.
/// Ownership: the cache owns its entries and shares the DeployedApp with
/// every requester via shared_ptr<const DeployedApp>; results remain
/// valid after clear(). Typically owned by a DeployScheduler, BuildFarm,
/// or (transitively) a Gateway.
class SpecializationCache {
public:
  using Deployer = std::function<std::shared_ptr<const DeployedApp>()>;

  /// One telemetry event per get_or_deploy resolution: the caller reused
  /// an in-memory entry (hit), the elected deployer revived a persisted
  /// deployment (disk_hit), or it deployed for real (deployed, with the
  /// deployer's wall seconds and whether the deployment succeeded).
  struct Event {
    bool hit = false;
    bool disk_hit = false;
    bool deployed = false;
    bool ok = false;             // meaningful when deployed
    double deploy_seconds = 0.0; // meaningful when deployed
  };
  using Observer = std::function<void(const Event&)>;

  explicit SpecializationCache(std::size_t shard_count = 16);

  SpecializationCache(const SpecializationCache&) = delete;
  SpecializationCache& operator=(const SpecializationCache&) = delete;

  /// Return the cached deployment for `key`, or run `deploy` exactly once
  /// across all concurrent callers of this key and cache its result.
  /// `was_hit`, when non-null, reports whether this caller reused an
  /// entry (true) or was the one that deployed (false). Failed
  /// deployments (result with ok == false) are NOT cached, so a transient
  /// failure does not poison the key.
  std::shared_ptr<const DeployedApp> get_or_deploy(const SpecKey& key,
                                                   const Deployer& deploy,
                                                   bool* was_hit = nullptr);

  /// Non-blocking probe: the cached successful deployment, or nullptr
  /// when the key is absent, still in flight, or failed.
  std::shared_ptr<const DeployedApp> get(const SpecKey& key) const;

  /// Drop every entry (e.g. after re-pushing an image family).
  void clear();

  std::size_t entry_count() const;

  /// Install the telemetry observer (the Gateway points it at its
  /// MetricsRegistry). NOT thread-safe with respect to concurrent
  /// get_or_deploy: set it once, before the cache starts serving.
  void set_observer(Observer observer) { observer_ = std::move(observer); }

  /// Attach (or detach, with nullptr) the persistent tier. The tier must
  /// outlive the cache. NOT thread-safe with respect to concurrent
  /// get_or_deploy: set it once, before the cache starts serving.
  void set_disk_tier(SpecDiskTier* tier) { disk_tier_ = tier; }

  // Monotonic statistics since construction. Every resolution is exactly
  // one of hits() / disk_hits() / misses(); without a disk tier,
  // disk_hits() is always zero.
  std::size_t hits() const { return hits_.load(); }
  std::size_t misses() const { return misses_.load(); }
  /// Deployments revived from the persistent tier (no lowering paid).
  std::size_t disk_hits() const { return disk_hits_.load(); }
  /// Number of deployer invocations == lowerings actually performed.
  std::size_t lowerings() const { return lowerings_.load(); }

private:
  struct Entry {
    // shared_future so late arrivals during a deploy block on the result
    // instead of re-deploying.
    std::shared_future<std::shared_ptr<const DeployedApp>> future;
    // Generation id: the failure-path cleanup erases only its own entry,
    // never a newer in-flight deployment that replaced it (clear() race).
    std::uint64_t id = 0;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::map<std::string, Entry> entries;
  };

  // Keyed by SpecKey (field-wise hash/equality), not the composite
  // string: a hit costs one hash probe with zero allocations.
  using FastMap = std::unordered_map<SpecKey, std::shared_ptr<const DeployedApp>,
                                     SpecKeyHash>;

  Shard& shard_for(const std::string& key);
  const Shard& shard_for(const std::string& key) const;
  void publish_fast_path(const SpecKey& key,
                         std::shared_ptr<const DeployedApp> app,
                         std::uint64_t generation);

  std::vector<std::unique_ptr<Shard>> shards_;
  // Lock-free read tier: completed successful deployments only. Guarded
  // for writes by publish_mutex_, which also makes the generation check
  // atomic with the publish (a clear() can never lose to a stale insert).
  common::rcu::Snapshot<FastMap> fast_path_;
  std::mutex publish_mutex_;
  std::atomic<std::uint64_t> generation_{0};
  Observer observer_;  // set once before serving; called outside shard locks
  SpecDiskTier* disk_tier_ = nullptr;  // set once before serving
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::size_t> hits_{0};
  std::atomic<std::size_t> misses_{0};
  std::atomic<std::size_t> disk_hits_{0};
  std::atomic<std::size_t> lowerings_{0};
};

}  // namespace xaas::service
