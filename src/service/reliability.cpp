#include "service/reliability.hpp"

#include <algorithm>

namespace xaas::service {

std::string_view to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::Ok:
      return "ok";
    case ErrorCode::QueueFull:
      return "queue_full";
    case ErrorCode::Shed:
      return "shed";
    case ErrorCode::ShuttingDown:
      return "shutting_down";
    case ErrorCode::NotFound:
      return "not_found";
    case ErrorCode::NoCompatibleNode:
      return "no_compatible_node";
    case ErrorCode::NodesUnavailable:
      return "nodes_unavailable";
    case ErrorCode::DeployFailed:
      return "deploy_failed";
    case ErrorCode::RunFailed:
      return "run_failed";
    case ErrorCode::DeadlineExceeded:
      return "deadline_exceeded";
    case ErrorCode::QuotaExceeded:
      return "quota_exceeded";
  }
  return "unknown";
}

bool is_retryable(ErrorCode code) {
  switch (code) {
    case ErrorCode::QueueFull:
    case ErrorCode::Shed:
    case ErrorCode::NodesUnavailable:
    case ErrorCode::QuotaExceeded:
      return true;
    default:
      return false;
  }
}

double RetryPolicy::backoff_seconds(int failed_attempt,
                                    std::uint64_t seed) const {
  double base = initial_backoff_seconds;
  for (int i = 1; i < failed_attempt; ++i) {
    base *= backoff_multiplier;
    if (base >= max_backoff_seconds) break;
  }
  base = std::min(base, max_backoff_seconds);
  const double j = std::clamp(jitter, 0.0, 1.0);
  if (j <= 0.0 || base <= 0.0) return base;
  // SplitMix64 finalizer over (seed, attempt): deterministic full-range
  // jitter without shared RNG state between worker threads.
  std::uint64_t x = seed + static_cast<std::uint64_t>(failed_attempt) *
                               0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  const double u = static_cast<double>(x >> 11) * 0x1.0p-53;  // [0, 1)
  return base * (1.0 - j * u);
}

bool CircuitBreaker::allow(Clock::time_point now) {
  // Healthy-fleet fast path: no lock, one acquire load.
  if (state_.load(std::memory_order_acquire) == State::Closed) return true;
  std::lock_guard lock(mutex_);
  switch (state_.load(std::memory_order_relaxed)) {
    case State::Closed:
      return true;
    case State::Open:
      if (now < open_until_) return false;
      state_.store(State::HalfOpen, std::memory_order_release);
      probes_granted_ = 0;
      [[fallthrough]];
    case State::HalfOpen:
      if (probes_granted_ >= options_.half_open_probes) return false;
      ++probes_granted_;
      return true;
  }
  return true;
}

void CircuitBreaker::record_success() {
  if (state_.load(std::memory_order_acquire) == State::Closed) {
    consecutive_failures_.store(0, std::memory_order_relaxed);
    return;
  }
  std::lock_guard lock(mutex_);
  consecutive_failures_.store(0, std::memory_order_relaxed);
  probes_granted_ = 0;
  state_.store(State::Closed, std::memory_order_release);
}

bool CircuitBreaker::record_failure(Clock::time_point now) {
  std::lock_guard lock(mutex_);
  const State state = state_.load(std::memory_order_relaxed);
  bool trip = false;
  if (state == State::HalfOpen) {
    trip = true;  // the probe failed: straight back to Open
  } else if (state == State::Closed) {
    const int failures =
        consecutive_failures_.fetch_add(1, std::memory_order_relaxed) + 1;
    trip = failures >= options_.failure_threshold;
  }
  // A failure landing while already Open (admitted before the trip)
  // neither re-trips nor extends the cooling window.
  if (trip) {
    consecutive_failures_.store(0, std::memory_order_relaxed);
    open_until_ = now + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(
                                options_.open_seconds));
    state_.store(State::Open, std::memory_order_release);
    trips_.fetch_add(1, std::memory_order_relaxed);
  }
  return trip;
}

}  // namespace xaas::service
