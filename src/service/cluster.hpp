// Multi-gateway cluster: the front tier that scales the serving plane
// past one Gateway (the "Acceleration as a Service" split — a routing
// tier in front of many acceleration services, each owning a slice of
// the fleet). One request travels:
//
//   Cluster::submit(RunRequest{tenant, weight, ...})
//     ── per-tenant token bucket ──> quota_denied + retry-after, or
//     ── consistent-hash ring (request class key: reference/selections/
//        target) ──> home gateway's shard
//     ── weighted fair queue (per-tenant WFQ, see fair_queue.hpp) ──>
//        dispatcher ──> Gateway::submit on the shard's gateway
//        (per-priority MPMC rings, routing, caches, execution — all the
//        existing single-gateway machinery)
//   idle dispatchers STEAL the head of the most backed-up sibling's WFQ,
//   but only when the §6.5 bandwidth model (fabric::transfer_seconds)
//   prices the shipment below the victim's estimated queue wait; a
//   stolen (or hash-moved) request class lands warm on its new gateway
//   by a modeled cross-gateway cache fill, also priced by the fabric.
//
// Everything reconciles exactly after drain (the fairness bench gate
// and ClusterStress assert this):
//   cluster.requests == admitted + rejected + shed + quota_denied
//   cluster.admitted == completed + failed
//   cluster.stolen   == sum over gateways of gateway.<name>.stolen
// and the same identities hold per tenant, with per-tenant latency
// histograms (tenant.<t>.total_seconds) counting every admitted request.
//
// Thread-safety: submit()/run_all()/snapshot()/pending() are safe from
// any thread. gateway(i) exposes the owned gateways for inspection; do
// not mutate them while the cluster serves. Ownership: the Cluster owns
// its gateways, dispatcher threads, quota table, and metrics registry;
// the destructor stops admission, drains every queued job (their futures
// complete), and joins the dispatchers before the gateways die.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "fabric/bandwidth.hpp"
#include "service/distribution.hpp"
#include "service/fair_queue.hpp"
#include "service/gateway.hpp"
#include "service/telemetry.hpp"

namespace xaas::service {

/// Seeded consistent-hash ring with virtual nodes. Placements are a pure
/// function of (seed, member set): identical seeds give identical rings,
/// insertion order never matters, and adding or removing one member
/// moves only the keys adjacent to its points (~K/N of K keys across N
/// members — the property tests in tests/service/cluster_test.cpp).
///
/// Thread-safety: not thread-safe; the Cluster builds it once at
/// construction and only reads it afterwards.
class ConsistentHashRing {
public:
  explicit ConsistentHashRing(std::size_t vnodes = 64,
                              std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  void add(const std::string& member);
  void remove(const std::string& member);

  /// The member owning `key`; empty string when the ring is empty.
  std::string lookup(std::string_view key) const;

  std::size_t member_count() const { return members_.size(); }
  const std::set<std::string>& members() const { return members_; }

private:
  std::uint64_t point(const std::string& member, std::size_t replica) const;

  std::size_t vnodes_;
  std::uint64_t seed_;
  /// point -> members hashing there (name-sorted; lookup takes the
  /// front, so a 64-bit point collision still resolves deterministically
  /// and independently of insertion order).
  std::map<std::uint64_t, std::vector<std::string>> ring_;
  std::set<std::string> members_;
};

struct ClusterOptions {
  /// Gateways in the cluster; the fleet is split into contiguous
  /// near-equal slices, one per gateway.
  std::size_t gateways = 4;
  /// Cluster dispatcher threads per gateway: each takes jobs from its
  /// shard's WFQ (or steals) and drives them through the gateway
  /// end to end, so this bounds per-gateway concurrency.
  std::size_t dispatchers_per_gateway = 2;
  /// Virtual nodes per gateway on the hash ring.
  std::size_t vnodes = 64;
  /// Ring seed: identical seeds place identical request classes on
  /// identical gateways.
  std::uint64_t seed = 0x9e3779b97f4a7c15ULL;
  /// Per-gateway WFQ bound: a submission to a shard already holding this
  /// many pending jobs is shed (code Shed + retry-after hint).
  std::size_t max_pending = 1024;
  /// Quota for tenants without an explicit entry (default: effectively
  /// unlimited — multi-tenancy is opt-in per tenant).
  TenantQuota default_quota{};
  /// Per-tenant quota overrides (rate, burst, WFQ weight).
  std::map<std::string, TenantQuota> tenant_quotas;

  /// Work stealing between gateways (disable to pin every request class
  /// to its hash home).
  bool steal = true;
  /// Victim backlog (pending jobs) required before a steal is considered.
  std::size_t steal_min_backlog = 2;
  /// Transport model for inter-gateway traffic (§6.5): steal shipments
  /// and cross-gateway cache fills are priced by
  /// fabric::transfer_seconds over this stack.
  fabric::MpiStack fabric_stack{"cluster fabric (container MPICH + cxi)",
                                "mpich", "cxi", /*containerized=*/true};
  /// Modeled bytes of a cross-gateway cache fill (specialized artifact
  /// shipped instead of rebuilt when a sibling gateway already has the
  /// class warm). With artifact_root set the real registry protocol
  /// replaces this model: fills are still counted, but the bytes and
  /// transfer time come from the actual blob traffic on the owned
  /// DistributionFabric.
  std::size_t fill_bytes = std::size_t{4} << 20;
  /// Artifact distribution: when non-empty, every gateway owns a
  /// persistent ArtifactStore under <artifact_root>/<gateway-name> and
  /// joins an owned DistributionFabric as a registry peer — cold classes
  /// replicate across gateways by lazy pulls (under the single-flight
  /// leaders) and gossip pre-warming instead of rebuilding. Overrides
  /// gateway.artifact_dir per shard. Empty = distribution off.
  std::string artifact_root;
  /// Gossip cadence: each shard runs one gossip round on its peer every
  /// N completions (0 disables background gossip; distribution_flush()
  /// still works).
  std::size_t gossip_every = 8;
  /// Registry protocol knobs. The stack is overridden with fabric_stack
  /// at construction so one knob prices all inter-gateway traffic.
  DistributionOptions distribution;
  /// Options applied to every owned gateway. worker_threads defaults to
  /// dispatchers_per_gateway (the dispatchers are the fan-out; a larger
  /// inner pool would only idle).
  GatewayOptions gateway;
};

/// Completion of one cluster request: the gateway's RunResult plus the
/// cluster-level routing story.
struct ClusterRunResult {
  RunResult result;
  std::string tenant;        // as labeled in telemetry ("" -> "default")
  std::string gateway;       // gateway that served the request
  std::string home_gateway;  // consistent-hash owner of its class
  bool stolen = false;       // served by a thief, not the home gateway
  /// Modeled inter-gateway transfer time charged to this request (steal
  /// shipment + cold-class cache fill), from fabric::transfer_seconds.
  double fabric_seconds = 0.0;
  /// Cluster admission to completion, wall seconds (includes the WFQ
  /// wait, which the per-gateway total_seconds does not see).
  double total_seconds = 0.0;
};

class Cluster {
public:
  Cluster(std::vector<vm::NodeSpec> fleet, ClusterOptions options = {});
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Push an image into every gateway's registry under `reference`.
  void push(const container::Image& image, const std::string& reference);

  /// Submit one request; the future always completes (quota denials,
  /// sheds, and rejections complete immediately with the matching code).
  std::future<ClusterRunResult> submit(RunRequest request);

  /// Submit a batch and wait; results in request order.
  std::vector<ClusterRunResult> run_all(std::vector<RunRequest> requests);

  /// The request-class key the ring hashes: reference, canonical
  /// selections, explicit march, opt level — the same tuple the
  /// specialization caches key on, so one class always lands (warm) on
  /// one gateway until stolen.
  static std::string request_class_key(const RunRequest& request);

  /// Pure steal-profitability rule (exposed for tests): ship only when
  /// the modeled transfer is cheaper than the victim's estimated wait.
  static bool steal_profitable(double transfer_seconds,
                               double victim_wait_seconds) {
    return transfer_seconds < victim_wait_seconds;
  }

  std::size_t gateway_count() const { return shards_.size(); }
  Gateway& gateway(std::size_t index) { return *shards_[index]->gateway; }
  const std::string& gateway_name(std::size_t index) const {
    return shards_[index]->name;
  }
  const ConsistentHashRing& ring() const { return ring_; }
  QuotaSet& quotas() { return quotas_; }

  /// Jobs admitted to WFQs but not yet taken by a dispatcher.
  std::size_t pending() const;

  /// The owned registry fabric, or nullptr when artifact_root was empty.
  DistributionFabric* distribution_fabric() { return fabric_.get(); }

  /// Drive gossip to quiescence: sweep every peer's gossip_round()
  /// repeatedly until a full sweep accepts no new blob anywhere (every
  /// announced hot digest is then replicated ring-wide). No-op without
  /// distribution. Safe to call while serving, though it is intended for
  /// drain points (benches, tests, maintenance windows).
  void distribution_flush();

  /// Cluster-level metrics (per-tenant, per-gateway, steal/fill/fabric
  /// counters, and — with distribution on — the fabric-wide
  /// distribution.* totals). Gateway-internal metrics live in
  /// gateway(i).snapshot().
  telemetry::MetricsSnapshot snapshot() const;
  telemetry::MetricsRegistry& metrics() { return metrics_; }

private:
  using Clock = std::chrono::steady_clock;

  struct Job {
    RunRequest request;
    std::promise<ClusterRunResult> promise;
    std::string tenant_label;
    std::string class_key;
    std::size_t home = 0;
    Clock::time_point admitted;
  };

  struct Shard {
    std::string name;
    std::unique_ptr<Gateway> gateway;
    /// Guards wfq (and pairs with cv); pending mirrors wfq.size() for
    /// lock-free backlog reads by thieves and shed checks.
    std::mutex mutex;
    std::condition_variable cv;
    WeightedFairQueue<Job> wfq;
    std::atomic<std::size_t> pending{0};
    telemetry::Counter* served = nullptr;
    telemetry::Counter* stolen = nullptr;  // jobs THIS gateway stole
    telemetry::Counter* fills = nullptr;
    /// Completions on this shard (drives the gossip cadence).
    std::atomic<std::uint64_t> completions{0};
  };

  void dispatcher_loop(std::size_t shard_index);
  bool try_steal(std::size_t thief, Job* out);
  void serve(std::size_t shard_index, Job job, bool stolen);
  /// Estimated seconds until a shard with `backlog` pending jobs would
  /// reach a newly queued one (service-time EMA over the dispatchers).
  double estimated_wait_seconds(std::size_t backlog) const;
  double now_seconds() const;
  void complete_inline(Job&& job, ErrorCode code, const std::string& error,
                       double retry_after);
  telemetry::Counter& tenant_counter(const std::string& label,
                                     const char* which);

  ClusterOptions options_;
  ConsistentHashRing ring_;
  std::map<std::string, std::size_t> shard_by_name_;
  telemetry::MetricsRegistry metrics_;
  telemetry::Counter* requests_ = nullptr;
  telemetry::Counter* admitted_ = nullptr;
  telemetry::Counter* rejected_ = nullptr;
  telemetry::Counter* shed_ = nullptr;
  telemetry::Counter* quota_denied_ = nullptr;
  telemetry::Counter* completed_ = nullptr;
  telemetry::Counter* failed_ = nullptr;
  telemetry::Counter* stolen_ = nullptr;
  telemetry::Counter* steal_skipped_ = nullptr;
  telemetry::Counter* fills_ = nullptr;
  telemetry::Counter* fabric_nanos_ = nullptr;

  QuotaSet quotas_;
  Clock::time_point start_;

  /// Owned registry fabric (null when artifact_root is empty). Declared
  /// before shards_ so every gateway's peer deregisters before the
  /// fabric dies.
  std::unique_ptr<DistributionFabric> fabric_;

  /// Which gateways have each request class warm (first server builds,
  /// later gateways fill over the fabric). Guarded by warm_mutex_.
  std::mutex warm_mutex_;
  std::map<std::string, std::set<std::size_t>> warm_;

  // Cluster-wide EMAs feeding the steal-profitability and retry-after
  // estimates; relaxed atomics (advisory, like the gateway's).
  std::atomic<std::uint64_t> service_ema_bits_{0};  // bit_cast<double> s
  std::atomic<std::uint64_t> bytes_ema_{0};         // workload bytes

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<bool> stop_{false};
  std::vector<std::thread> dispatchers_;  // last: joined before shards die
};

/// Serialized size estimate of a workload (what a steal ships across the
/// fabric): buffer payloads plus a small framing overhead.
std::size_t workload_bytes(const vm::Workload& workload);

}  // namespace xaas::service
