#include "service/gateway.hpp"

#include <algorithm>
#include <bit>
#include <limits>

#include "common/sha256.hpp"
#include "container/image.hpp"
#include "service/distribution.hpp"

namespace xaas::service {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void append_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void append_f64(std::string& out, double v) {
  append_u64(out, std::bit_cast<std::uint64_t>(v));
}

void append_i64(std::string& out, long long v) {
  append_u64(out, static_cast<std::uint64_t>(v));
}

/// Whether a fleet node can serve an image of the given OCI architecture
/// (source images are per-base-ISA; IR images use the llvm-ir+<isa>
/// pseudo-architectures of §5.2).
bool node_serves_arch(const vm::NodeSpec& node, const std::string& arch) {
  if (node.cpu.arch == isa::Arch::X86_64) {
    return arch == container::kArchAmd64 || arch == container::kArchLlvmIrAmd64;
  }
  return arch == container::kArchArm64 || arch == container::kArchLlvmIrArm64;
}

}  // namespace

std::string numerics_digest(const vm::RunResult& run,
                            const vm::Workload& workload) {
  std::string bytes;
  bytes.reserve(128);
  append_f64(bytes, run.ret_f64);
  append_i64(bytes, run.ret_i64);
  append_f64(bytes, run.cycles_serial);
  append_f64(bytes, run.cycles_parallel);
  append_f64(bytes, run.cycles_gpu);
  append_i64(bytes, run.fork_joins);
  append_i64(bytes, run.instructions);
  append_f64(bytes, run.elapsed_seconds);
  for (const auto& [name, buffer] : workload.f64_buffers) {
    bytes.append(name);
    bytes.push_back('\0');
    append_u64(bytes, buffer.size());
    for (const double v : buffer) append_f64(bytes, v);
  }
  for (const auto& [name, buffer] : workload.i64_buffers) {
    bytes.append(name);
    bytes.push_back('\0');
    append_u64(bytes, buffer.size());
    for (const long long v : buffer) append_i64(bytes, v);
  }
  return common::sha256_hex(bytes);
}

Gateway::Gateway(std::vector<vm::NodeSpec> fleet, GatewayOptions options)
    : options_(std::move(options)),
      fleet_(std::move(fleet)),
      artifact_store_([&]() -> std::unique_ptr<ArtifactStore> {
        if (options_.artifact_dir.empty()) return nullptr;
        ArtifactStoreOptions store_options;
        store_options.dir = options_.artifact_dir;
        store_options.max_bytes = options_.artifact_max_bytes;
        return std::make_unique<ArtifactStore>(std::move(store_options));
      }()),
      peer_([&]() -> std::unique_ptr<DistributionPeer> {
        // The registry peer needs a store to serve from; without one the
        // gateway simply stays off the fabric.
        if (!options_.distribution || !artifact_store_) return nullptr;
        return std::make_unique<DistributionPeer>(
            options_.distribution_name.empty() ? "gateway"
                                               : options_.distribution_name,
            *artifact_store_, *options_.distribution);
      }()),
      registry_(options_.registry_shards),
      farm_(registry_,
            [&] {
              // The gateway's workers carry the fan-out; an inner pool at
              // hardware concurrency would only idle.
              BuildFarmOptions farm_options = options_.farm;
              if (farm_options.threads == 0) farm_options.threads = 1;
              farm_options.artifact_store = artifact_store_.get();
              farm_options.distribution = peer_.get();
              return farm_options;
            }()),
      scheduler_(registry_, farm_, [&] {
        DeploySchedulerOptions sched_options = options_.scheduler;
        if (sched_options.threads == 0) sched_options.threads = 1;
        sched_options.artifact_store = artifact_store_.get();
        sched_options.distribution = peer_.get();
        return sched_options;
      }()) {
  // A zero bound would make every blocking submit() unsatisfiable.
  if (options_.max_queue == 0) options_.max_queue = 1;
  requests_ = &metrics_.counter("gateway.requests");
  admitted_ = &metrics_.counter("gateway.admitted");
  rejected_ = &metrics_.counter("gateway.rejected");
  shed_ = &metrics_.counter("gateway.shed");
  completed_ = &metrics_.counter("gateway.completed");
  failed_ = &metrics_.counter("gateway.failed");
  backpressure_waits_ = &metrics_.counter("gateway.backpressure_waits");
  retries_ = &metrics_.counter("gateway.retries");
  breaker_open_ = &metrics_.counter("gateway.breaker_open");
  deadline_exceeded_ = &metrics_.counter("gateway.deadline_exceeded");
  vm_runs_ = &metrics_.counter("vm.runs");
  vm_instructions_ = &metrics_.counter("vm.instructions");
  queue_depth_ = &metrics_.gauge("gateway.queue_depth");
  in_flight_ = &metrics_.gauge("gateway.in_flight");
  queue_hist_ = &metrics_.histogram("gateway.queue_seconds");
  deploy_hist_ = &metrics_.histogram("gateway.deploy_seconds");
  run_hist_ = &metrics_.histogram("gateway.run_seconds");
  total_hist_ = &metrics_.histogram("gateway.total_seconds");

  // The existing caches report into the same registry: both
  // whole-deployment caches (IR scheduler + source farm) feed one set of
  // specialization metrics, the farm's per-image TU caches feed the TU
  // metrics.
  auto* spec_hits = &metrics_.counter("spec_cache.hits");
  auto* spec_disk_hits = &metrics_.counter("spec_cache.disk_hits");
  auto* spec_misses = &metrics_.counter("spec_cache.misses");
  auto* spec_failures = &metrics_.counter("spec_cache.deploy_failures");
  auto* lowering_hist = &metrics_.histogram("spec_cache.lowering_seconds");
  const auto spec_observer =
      [spec_hits, spec_disk_hits, spec_misses, spec_failures,
       lowering_hist](const SpecializationCache::Event& event) {
        if (event.hit) {
          spec_hits->add(1);
          return;
        }
        if (event.disk_hit) {
          spec_disk_hits->add(1);
          return;
        }
        spec_misses->add(1);
        lowering_hist->observe(event.deploy_seconds);
        if (!event.ok) spec_failures->add(1);
      };
  scheduler_.cache().set_observer(spec_observer);
  farm_.cache().set_observer(spec_observer);

  auto* tu_hits = &metrics_.counter("tu_cache.hits");
  auto* tu_disk_hits = &metrics_.counter("tu_cache.disk_hits");
  auto* tu_compiles = &metrics_.counter("tu_cache.compiles");
  auto* tu_hist = &metrics_.histogram("tu_cache.compile_seconds");
  farm_.set_tu_observer(
      [tu_hits, tu_disk_hits, tu_compiles,
       tu_hist](const minicc::CompileCache::CompileEvent& event) {
        if (event.tu_cache_hit) {
          tu_hits->add(1);
          return;
        }
        if (event.disk_hit) {
          tu_disk_hits->add(1);
          return;
        }
        tu_compiles->add(1);
        tu_hist->observe(event.seconds);
      });

  if (artifact_store_) {
    auto* store_hits = &metrics_.counter("artifact_store.disk_hits");
    auto* store_misses = &metrics_.counter("artifact_store.disk_misses");
    auto* store_writes = &metrics_.counter("artifact_store.writes");
    auto* store_evictions = &metrics_.counter("artifact_store.evictions");
    auto* store_verify_failures =
        &metrics_.counter("artifact_store.verify_failures");
    artifact_store_->set_observer(
        [store_hits, store_misses, store_writes, store_evictions,
         store_verify_failures](const ArtifactStore::Event& event) {
          switch (event.kind) {
            case ArtifactStore::Event::Kind::DiskHit:
              store_hits->add(1);
              break;
            case ArtifactStore::Event::Kind::DiskMiss:
              store_misses->add(1);
              break;
            case ArtifactStore::Event::Kind::Write:
              store_writes->add(1);
              break;
            case ArtifactStore::Event::Kind::Eviction:
              store_evictions->add(1);
              break;
            case ArtifactStore::Event::Kind::VerifyFailure:
              store_verify_failures->add(1);
              break;
          }
        });
  }

  load_.reserve(fleet_.size());
  breakers_.reserve(fleet_.size());
  for (std::size_t i = 0; i < fleet_.size(); ++i) {
    load_.push_back(std::make_unique<NodeLoad>());
    breakers_.push_back(std::make_unique<CircuitBreaker>(options_.breaker));
  }
  // Routing snapshot starts all-closed (matches the fresh breakers).
  {
    auto table = std::make_unique<RouteTable>();
    table->nodes.resize(fleet_.size());
    route_table_.store(std::move(table));
  }

  std::size_t worker_count = options_.worker_threads;
  if (worker_count == 0) {
    worker_count = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(worker_count);
  for (std::size_t i = 0; i < worker_count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Gateway::~Gateway() {
  stop_.store(true, std::memory_order_seq_cst);
  {
    // Empty critical section: serializes with a worker/submitter that
    // checked the predicate but has not yet slept, so the notify below
    // cannot be lost.
    std::lock_guard lock(wait_mutex_);
  }
  cv_workers_.notify_all();
  cv_space_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::future<RunResult> Gateway::submit(RunRequest request) {
  return submit_impl(std::move(request), /*never_block=*/false);
}

std::vector<std::future<RunResult>> Gateway::submit_batch(
    std::vector<RunRequest> requests) {
  std::vector<std::future<RunResult>> futures;
  futures.reserve(requests.size());
  for (auto& request : requests) {
    futures.push_back(submit_impl(std::move(request), /*never_block=*/true));
  }
  return futures;
}

std::future<RunResult> Gateway::submit_impl(RunRequest request,
                                            bool never_block) {
  requests_->add(1);
  std::promise<RunResult> promise;
  auto future = promise.get_future();

  if (stop_.load(std::memory_order_acquire)) {
    promise.set_value(reject(request, ErrorCode::ShuttingDown,
                             "gateway is shutting down"));
    return future;
  }
  if (should_shed()) {
    promise.set_value(shed(request, retry_after_hint()));
    return future;
  }

  // Lock-free admission ticket: queued_ (incremented here, decremented
  // after a worker pops) enforces max_queue across every class ring, so
  // a won ticket's push below can never find its ring full.
  bool counted_wait = false;
  for (;;) {
    std::size_t depth = queued_.load(std::memory_order_acquire);
    if (depth >= options_.max_queue) {
      if (options_.reject_on_full) {
        promise.set_value(reject(
            request, ErrorCode::QueueFull,
            "gateway queue full (" + std::to_string(options_.max_queue) +
                " requests waiting)",
            retry_after_hint()));
        return future;
      }
      if (never_block) {
        // Partial-batch degradation: the caller asked never to stall, so
        // the requests that do not fit are shed rather than queued.
        promise.set_value(shed(request, retry_after_hint()));
        return future;
      }
      if (!counted_wait) {
        counted_wait = true;  // once per submission, not per wakeup
        backpressure_waits_->add(1);
      }
      std::unique_lock lock(wait_mutex_);
      cv_space_.wait(lock, [&] {
        return stop_.load(std::memory_order_acquire) ||
               queued_.load(std::memory_order_acquire) < options_.max_queue;
      });
      if (stop_.load(std::memory_order_acquire)) {
        lock.unlock();
        promise.set_value(reject(request, ErrorCode::ShuttingDown,
                                 "gateway is shutting down"));
        return future;
      }
      continue;  // room may be gone again by the time we re-ticket
    }
    if (queued_.compare_exchange_weak(depth, depth + 1,
                                      std::memory_order_acq_rel)) {
      break;
    }
  }

  admitted_->add(1);
  queue_depth_->add(1);
  const std::uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  Job job{std::move(request), std::move(promise), Clock::now(), seq};
  const std::int64_t priority = job.request.priority;
  common::MpmcRing<Job>* ring = ring_for(priority);
  // Cannot fail: queued_ <= max_queue <= every ring's capacity.
  while (!ring->try_push(std::move(job))) {
  }
  {
    // Serialize with a worker deciding to sleep (see ~Gateway).
    std::lock_guard lock(wait_mutex_);
  }
  cv_workers_.notify_one();
  return future;
}

common::MpmcRing<Gateway::Job>* Gateway::ring_for(std::int64_t priority) {
  {
    const auto table = class_table_.read();
    for (ClassRing* cls : *table) {
      if (cls->priority == priority) return &cls->ring;
    }
  }
  std::lock_guard lock(class_mutex_);
  {
    const auto table = class_table_.read();  // re-check under the lock
    for (ClassRing* cls : *table) {
      if (cls->priority == priority) return &cls->ring;
    }
  }
  class_storage_.push_back(
      std::make_unique<ClassRing>(priority, options_.max_queue));
  ClassRing* fresh = class_storage_.back().get();
  class_table_.update([&](ClassTable& table) {
    table.push_back(fresh);
    std::sort(table.begin(), table.end(),
              [](const ClassRing* a, const ClassRing* b) {
                return a->priority > b->priority;
              });
  });
  return &fresh->ring;
}

bool Gateway::try_dequeue(Job& out, DrainState& drain) {
  const auto table = class_table_.read();
  const ClassTable& classes = *table;
  const std::size_t n = classes.size();
  if (n == 0) return false;
  std::size_t start = 0;
  if (options_.drain_quantum > 0 && drain.streak >= options_.drain_quantum) {
    // This worker has drained a full quantum from one class: offer the
    // next lower class the first shot this round (weighted drain).
    for (std::size_t i = 0; i + 1 < n; ++i) {
      if (classes[i]->priority == drain.last_priority) {
        start = i + 1;
        break;
      }
    }
    drain.streak = 0;
  }
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t i = (start + k) % n;
    if (classes[i]->ring.try_pop(out)) {
      if (classes[i]->priority == drain.last_priority) {
        ++drain.streak;
      } else {
        drain.last_priority = classes[i]->priority;
        drain.streak = 1;
      }
      return true;
    }
  }
  return false;
}

bool Gateway::should_shed() const {
  if (options_.shed_queue_fraction > 0.0 &&
      static_cast<double>(queued_.load(std::memory_order_acquire)) >=
          options_.shed_queue_fraction *
              static_cast<double>(options_.max_queue)) {
    return true;
  }
  if (options_.shed_failure_rate > 0.0) {
    const auto total = window_total_.load(std::memory_order_relaxed);
    if (total >= options_.shed_min_samples) {
      const auto failed = window_failed_.load(std::memory_order_relaxed);
      if (static_cast<double>(failed) >=
          options_.shed_failure_rate * static_cast<double>(total)) {
        return true;
      }
    }
  }
  return false;
}

double Gateway::retry_after_hint() const {
  // Estimated drain time of the current backlog: recent per-request
  // service time (EMA; 1 ms floor before any completion) spread over the
  // workers, plus one service slot for the retried request itself.
  const double ema = std::bit_cast<double>(
      service_ema_bits_.load(std::memory_order_relaxed));
  const double per_request = ema > 0.0 ? ema : 1e-3;
  const double workers =
      static_cast<double>(std::max<std::size_t>(1, workers_.size()));
  const double depth =
      static_cast<double>(queued_.load(std::memory_order_acquire));
  return per_request * (1.0 + depth / workers);
}

void Gateway::record_completion(bool ok, double total_seconds) {
  // Service-time EMA (retry_after hint): seeded by the first completion.
  auto bits = service_ema_bits_.load(std::memory_order_relaxed);
  for (;;) {
    const double current = std::bit_cast<double>(bits);
    const double next =
        current == 0.0 ? total_seconds : current * 0.9 + total_seconds * 0.1;
    if (service_ema_bits_.compare_exchange_weak(
            bits, std::bit_cast<std::uint64_t>(next),
            std::memory_order_relaxed)) {
      break;
    }
  }
  if (options_.shed_failure_rate <= 0.0) return;
  const auto now = std::chrono::duration_cast<std::chrono::nanoseconds>(
                       Clock::now().time_since_epoch())
                       .count();
  auto start = window_start_nanos_.load(std::memory_order_relaxed);
  const auto window_nanos =
      static_cast<std::int64_t>(options_.shed_window_seconds * 1e9);
  if (now - start > window_nanos &&
      window_start_nanos_.compare_exchange_strong(start, now,
                                                  std::memory_order_relaxed)) {
    // One completion rotates the window; concurrent completions land in
    // the fresh window (approximate by design — shedding is advisory).
    window_total_.store(0, std::memory_order_relaxed);
    window_failed_.store(0, std::memory_order_relaxed);
  }
  window_total_.fetch_add(1, std::memory_order_relaxed);
  if (!ok) window_failed_.fetch_add(1, std::memory_order_relaxed);
}

void Gateway::observe_fault_plan(fault::FaultPlan& plan) {
  plan.set_observer([this](std::string_view site) {
    metrics_.counter("fault." + std::string(site)).add(1);
  });
}

std::vector<RunResult> Gateway::run_all(std::vector<RunRequest> requests) {
  std::vector<std::future<RunResult>> futures;
  futures.reserve(requests.size());
  for (auto& request : requests) futures.push_back(submit(std::move(request)));
  std::vector<RunResult> results;
  results.reserve(futures.size());
  for (auto& future : futures) results.push_back(future.get());
  return results;
}

std::size_t Gateway::queue_depth() const {
  return queued_.load(std::memory_order_acquire);
}

telemetry::MetricsSnapshot Gateway::snapshot() const {
  telemetry::MetricsSnapshot snap = metrics_.snapshot();
  // Process-wide RCU reclamation counters: every snapshot swap retires
  // one version, every deferred free reclaims one.
  const auto& domain = common::rcu::EpochDomain::instance();
  snap.counters["epoch.swaps"] = domain.retired();
  snap.counters["epoch.deferred_frees"] = domain.freed();
  // This gateway's registry-peer counters (fabric-wide totals live in
  // the Cluster's snapshot — overlaying them here too would double-count
  // across gateways).
  if (peer_) {
    const PeerStats stats = peer_->stats();
    snap.counters["distribution.blobs_in"] = stats.blobs_in;
    snap.counters["distribution.bytes_in"] = stats.bytes_in;
    snap.counters["distribution.blobs_out"] = stats.blobs_out;
    snap.counters["distribution.bytes_out"] = stats.bytes_out;
    snap.counters["distribution.pushed_in"] = stats.pushed_in;
    snap.counters["distribution.prewarm_fetches"] = stats.prewarm_fetches;
    snap.counters["distribution.lazy_fetches"] = stats.lazy_fetches;
    snap.counters["distribution.verify_rejects"] = stats.verify_rejects;
  }
  return snap;
}

void Gateway::worker_loop() {
  DrainState drain;
  for (;;) {
    Job job;
    // Fast path: pop without touching the wait mutex.
    bool got = try_dequeue(job, drain);
    if (!got) {
      std::unique_lock lock(wait_mutex_);
      cv_workers_.wait(lock, [&] {
        if ((got = try_dequeue(job, drain))) return true;
        // Exit only once stopping AND no ticket is outstanding (a
        // ticketed job may still be in flight between CAS and push).
        return stop_.load(std::memory_order_acquire) &&
               queued_.load(std::memory_order_acquire) == 0;
      });
      if (!got) return;  // stop_ set and nothing left to drain
    }
    queued_.fetch_sub(1, std::memory_order_acq_rel);
    {
      // Serialize with a submitter deciding to block (see ~Gateway).
      std::lock_guard space_lock(wait_mutex_);
    }
    cv_space_.notify_one();
    // During shutdown, peers sleep until queued_ drains to zero — the
    // worker that took the last job must wake them to exit.
    if (stop_.load(std::memory_order_acquire)) cv_workers_.notify_all();
    queue_depth_->add(-1);
    in_flight_->add(1);
    // Queue wait is admission→dequeue, measured here so resolve/routing
    // overheads inside execute() are never misattributed to the queue.
    const double queue_seconds = seconds_since(job.admitted);

    RunResult result;
    if (job.request.deadline_seconds > 0.0 &&
        queue_seconds >= job.request.deadline_seconds) {
      // The budget ran out while queued: fail fast, never start work.
      deadline_exceeded_->add(1);
      result.code = ErrorCode::DeadlineExceeded;
      result.error = "deadline exceeded while queued";
    } else {
      result = execute(job.request, job.admitted, job.seq);
    }
    result.total_seconds = seconds_since(job.admitted);
    result.queue_seconds = queue_seconds;
    queue_hist_->observe(result.queue_seconds);
    total_hist_->observe(result.total_seconds);
    (result.ok ? completed_ : failed_)->add(1);
    record_completion(result.ok, result.total_seconds);

    in_flight_->add(-1);
    finish(std::move(job), std::move(result));
  }
}

void Gateway::finish(Job job, RunResult result) {
  result.completion_seq = completion_seq_.fetch_add(1) + 1;
  job.promise.set_value(std::move(result));
}

RunResult Gateway::reject(RunRequest& request, ErrorCode code,
                          const std::string& reason, double retry_after) {
  (void)request;
  rejected_->add(1);
  RunResult result;
  result.code = code;
  result.error = reason;
  result.retry_after_seconds = retry_after;
  result.completion_seq = completion_seq_.fetch_add(1) + 1;
  return result;
}

RunResult Gateway::shed(const RunRequest& request, double retry_after) {
  (void)request;
  shed_->add(1);
  RunResult result;
  result.code = ErrorCode::Shed;
  result.error = "request shed (gateway overloaded)";
  result.retry_after_seconds = retry_after;
  result.completion_seq = completion_seq_.fetch_add(1) + 1;
  return result;
}

void Gateway::publish_route_state(std::size_t node_index, bool open,
                                  Clock::time_point open_until) {
  route_table_.update([&](RouteTable& table) {
    table.nodes[node_index].open = open;
    table.nodes[node_index].open_until = open_until;
  });
}

int Gateway::route(const container::Image& image, const RunRequest& request,
                   Clock::time_point now, bool* any_compatible) {
  if (any_compatible) *any_compatible = false;
  const std::size_t n = fleet_.size();
  if (n == 0) return -1;
  // Two passes at most: the second covers a breaker that opened while
  // the first pass was scanning (detected by the post-selection check).
  for (int pass = 0; pass < 2; ++pass) {
    // One pinned snapshot per pass: breaker state and the skip decision
    // come from the same epoch, so a node whose breaker opened before
    // the pass began can never be selected by it.
    const auto table = route_table_.read();
    // Rotate the scan start so equal-load compatible nodes share work.
    const std::size_t start =
        static_cast<std::size_t>(route_rr_.fetch_add(1) % n);
    int best = -1;
    int best_load = std::numeric_limits<int>::max();
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t i = (start + k) % n;
      const vm::NodeSpec& node = fleet_[i];
      if (!node_serves_arch(node, image.architecture)) continue;
      if (request.march) {
        // An explicit march the node cannot execute would only fail the
        // plan downstream — route around it up front.
        if (isa::arch_of(*request.march) != node.cpu.arch ||
            !isa::runs_on(*request.march, node.best_vector_isa())) {
          continue;
        }
      }
      if (any_compatible) *any_compatible = true;
      // A tripped breaker takes the node out of rotation until it
      // cools. Cooling nodes are skipped from the snapshot alone; once
      // the cooldown has elapsed the live breaker arbitrates half-open
      // probes (allow() hands out the bounded probe tokens).
      const RouteTable::Node& gate = table->nodes[i];
      if (gate.open && now < gate.open_until) continue;
      if (!breakers_[i]->allow(now)) continue;
      const int load = load_[i]->active.load(std::memory_order_relaxed);
      if (load < best_load) {
        best = static_cast<int>(i);
        best_load = load;
      }
    }
    if (best < 0) return -1;
    // Re-validate against the live breaker: if it opened mid-pass (after
    // our snapshot was pinned), rescan once with the fresh table instead
    // of routing to a node already known bad.
    if (breakers_[static_cast<std::size_t>(best)]->state() !=
        CircuitBreaker::State::Open) {
      return best;
    }
  }
  return -1;  // both passes raced an opening breaker: transient
}

bool Gateway::backoff_for_retry(RunResult& out, ErrorCode code,
                                const std::string& error, int charged_attempts,
                                std::uint64_t jitter_seed,
                                const Deadline& deadline, bool immediate) {
  if (charged_attempts >= options_.retry.max_attempts) {
    out.code = code;
    out.error = error + " (gave up after " +
                std::to_string(charged_attempts) + " attempts)";
    return false;
  }
  double backoff = 0.0;
  if (!immediate && charged_attempts > 0) {
    backoff = options_.retry.backoff_seconds(charged_attempts, jitter_seed);
  }
  if (deadline.active() &&
      deadline.remaining_seconds(Clock::now()) <= backoff) {
    // The budget cannot cover the sleep, let alone the retry.
    deadline_exceeded_->add(1);
    out.code = ErrorCode::DeadlineExceeded;
    out.error = "deadline exceeded while retrying after: " + error;
    return false;
  }
  if (backoff > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
  }
  retries_->add(1);
  return true;
}

RunResult Gateway::execute(RunRequest& request, Clock::time_point admitted,
                           std::uint64_t seq) {
  RunResult out;
  const Deadline deadline = request.deadline_seconds > 0.0
                                ? Deadline::after(request.deadline_seconds,
                                                  admitted)
                                : Deadline();

  const auto digest = registry_.resolve(request.image_reference);
  if (!digest) {
    out.code = ErrorCode::NotFound;
    out.error = "image not found in registry: " + request.image_reference;
    return out;
  }
  const auto image = registry_.pull(*digest);  // shared, no layer copy

  // Decorrelate backoff jitter across requests while keeping one
  // request's schedule a pure function of its admission order.
  const std::uint64_t jitter_seed = (seq + 1) * 0x9e3779b97f4a7c15ULL;
  // Inherited single-flight failures (a waiter that joined a failing
  // leader) retry immediately without consuming attempts — but bounded,
  // so a pathological plan cannot loop forever.
  constexpr int kMaxInheritedRetries = 32;
  int inherited_retries = 0;

  for (int attempt = 1;; ++attempt) {
    out.attempts = attempt;
    const auto now = Clock::now();
    if (deadline.expired(now)) {
      deadline_exceeded_->add(1);
      out.code = ErrorCode::DeadlineExceeded;
      out.error = "deadline exceeded before attempt " +
                  std::to_string(attempt);
      return out;
    }

    bool any_compatible = false;
    const int node_index = route(*image, request, now, &any_compatible);
    if (node_index < 0) {
      if (!any_compatible) {
        // No node can *ever* serve this request: permanent, no retry.
        out.code = ErrorCode::NoCompatibleNode;
        out.error =
            "no compatible node in fleet for " + request.image_reference +
            " (architecture " + image->architecture +
            (request.march
                 ? ", march " + std::string(isa::to_string(*request.march))
                 : "") +
            ")";
        return out;
      }
      // Compatible nodes exist but every breaker is open right now.
      if (!backoff_for_retry(out, ErrorCode::NodesUnavailable,
                             "all compatible nodes unavailable (circuit "
                             "breakers open)",
                             attempt - inherited_retries, jitter_seed,
                             deadline, /*immediate=*/false)) {
        return out;
      }
      continue;
    }
    const vm::NodeSpec& node = fleet_[static_cast<std::size_t>(node_index)];
    out.node_name = node.name;
    CircuitBreaker& breaker = *breakers_[static_cast<std::size_t>(node_index)];
    NodeLoad& load = *load_[static_cast<std::size_t>(node_index)];
    load.active.fetch_add(1, std::memory_order_relaxed);

    // Deploy: the scheduler routes source images to the farm by the
    // container-kind annotation; both paths land in a specialization
    // cache, so repeat (image, config, target) requests reuse the cached
    // app.
    MixedDeployRequest deploy_request;
    deploy_request.node = node;
    deploy_request.image_reference = *digest;
    deploy_request.selections = request.selections;
    deploy_request.march = request.march;
    deploy_request.opt_level = request.opt_level;
    deploy_request.auto_specialize = request.auto_specialize;
    const auto t_deploy = Clock::now();
    const FleetDeployResult deployed = scheduler_.deploy(deploy_request);
    const double deploy_seconds = seconds_since(t_deploy);
    out.deploy_seconds += deploy_seconds;  // accumulated across attempts
    deploy_hist_->observe(deploy_seconds);
    if (!deployed.ok) {
      load.active.fetch_sub(1, std::memory_order_relaxed);
      if (!deployed.transient) {
        // Deterministic failure (unknown image, bad plan, malformed
        // source): retrying cannot help.
        out.code = deployed.code == ErrorCode::Ok ? ErrorCode::DeployFailed
                                                  : deployed.code;
        out.error = deployed.error;
        return out;
      }
      // Transient deploy failure. Failed lowerings are never cached
      // (spec_cache.cpp / compile_cache.cpp erase before publishing), so
      // a retry elects a fresh deployer. A waiter that inherited the
      // leader's failure (cache_hit on a failed result) did not spend
      // its own attempt — it retries immediately.
      const bool inherited = deployed.cache_hit;
      if (inherited) {
        ++inherited_retries;
        if (inherited_retries > kMaxInheritedRetries) {
          out.code = deployed.code;
          out.error = deployed.error + " (too many inherited failures)";
          return out;
        }
      }
      if (!backoff_for_retry(out, deployed.code, deployed.error,
                             attempt - inherited_retries, jitter_seed,
                             deadline, /*immediate=*/inherited)) {
        return out;
      }
      continue;
    }
    out.configuration = deployed.configuration;
    out.spec_cache_hit = deployed.cache_hit;
    // Memoized at deploy time; falling back to a fresh digest only covers
    // hand-constructed apps that never went through a deploy path.
    out.image_digest = deployed.app->image_digest.empty()
                           ? deployed.app->image.digest()
                           : deployed.app->image_digest;

    // The deploy may have eaten the budget: check before committing to
    // the run.
    if (deadline.expired(Clock::now())) {
      load.active.fetch_sub(1, std::memory_order_relaxed);
      deadline_exceeded_->add(1);
      out.code = ErrorCode::DeadlineExceeded;
      out.error = "deadline exceeded after deploy, before run";
      return out;
    }

    // Injected node failure modes: a crashed node fails every run routed
    // to it (its breaker opens and routing moves on); a slow node stalls
    // before executing.
    fault::FaultPlan* plan = fault::FaultInjector::active();
    vm::RunResult run;
    if (plan != nullptr && plan->node_crashed(node.name)) {
      run.ok = false;
      run.error = "injected node crash on " + node.name;
    } else {
      if (plan != nullptr && plan->fires(fault::kNodeSlow, node.name)) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(plan->slowdown_seconds()));
      }
      // Run on the routed node through the shared pre-decoded program;
      // the stats hook streams VM counters into telemetry.
      vm::ExecutorOptions exec_options;
      exec_options.threads = request.threads;
      exec_options.stats_hook = [this](const vm::RunResult& r) {
        vm_runs_->add(1);
        if (r.instructions > 0) {
          vm_instructions_->add(static_cast<std::uint64_t>(r.instructions));
        }
      };
      const auto t_run = Clock::now();
      run = deployed.app->run_on(node, request.workload, exec_options);
      const double run_seconds = seconds_since(t_run);
      out.run_seconds += run_seconds;  // accumulated across attempts
      run_hist_->observe(run_seconds);
    }
    load.active.fetch_sub(1, std::memory_order_relaxed);

    if (!run.ok) {
      const auto failure_now = Clock::now();
      if (breaker.record_failure(failure_now)) {
        breaker_open_->add(1);
        // Publish the trip into the routing snapshot: every route() pass
        // that pins a later epoch skips this node until it cools.
        publish_route_state(
            static_cast<std::size_t>(node_index), /*open=*/true,
            failure_now + std::chrono::duration_cast<Clock::duration>(
                              std::chrono::duration<double>(
                                  options_.breaker.open_seconds)));
      }
      if (!backoff_for_retry(out, ErrorCode::RunFailed,
                             "run failed: " + run.error,
                             attempt - inherited_retries, jitter_seed,
                             deadline, /*immediate=*/false)) {
        return out;
      }
      continue;
    }
    breaker.record_success();
    // Close the routing gate if this node was marked open (a successful
    // half-open probe just re-admitted it). Probe only the snapshot on
    // the common path so healthy-node successes publish nothing.
    if (route_table_.read()->nodes[static_cast<std::size_t>(node_index)].open) {
      publish_route_state(static_cast<std::size_t>(node_index),
                          /*open=*/false, Clock::time_point{});
    }
    out.run = std::move(run);
    out.numerics_digest = numerics_digest(out.run, request.workload);
    out.code = ErrorCode::Ok;
    out.ok = true;
    return out;
  }
}

}  // namespace xaas::service
