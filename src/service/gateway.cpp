#include "service/gateway.hpp"

#include <algorithm>
#include <bit>
#include <limits>

#include "common/sha256.hpp"
#include "container/image.hpp"

namespace xaas::service {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void append_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void append_f64(std::string& out, double v) {
  append_u64(out, std::bit_cast<std::uint64_t>(v));
}

void append_i64(std::string& out, long long v) {
  append_u64(out, static_cast<std::uint64_t>(v));
}

/// Whether a fleet node can serve an image of the given OCI architecture
/// (source images are per-base-ISA; IR images use the llvm-ir+<isa>
/// pseudo-architectures of §5.2).
bool node_serves_arch(const vm::NodeSpec& node, const std::string& arch) {
  if (node.cpu.arch == isa::Arch::X86_64) {
    return arch == container::kArchAmd64 || arch == container::kArchLlvmIrAmd64;
  }
  return arch == container::kArchArm64 || arch == container::kArchLlvmIrArm64;
}

}  // namespace

std::string numerics_digest(const vm::RunResult& run,
                            const vm::Workload& workload) {
  std::string bytes;
  bytes.reserve(128);
  append_f64(bytes, run.ret_f64);
  append_i64(bytes, run.ret_i64);
  append_f64(bytes, run.cycles_serial);
  append_f64(bytes, run.cycles_parallel);
  append_f64(bytes, run.cycles_gpu);
  append_i64(bytes, run.fork_joins);
  append_i64(bytes, run.instructions);
  append_f64(bytes, run.elapsed_seconds);
  for (const auto& [name, buffer] : workload.f64_buffers) {
    bytes.append(name);
    bytes.push_back('\0');
    append_u64(bytes, buffer.size());
    for (const double v : buffer) append_f64(bytes, v);
  }
  for (const auto& [name, buffer] : workload.i64_buffers) {
    bytes.append(name);
    bytes.push_back('\0');
    append_u64(bytes, buffer.size());
    for (const long long v : buffer) append_i64(bytes, v);
  }
  return common::sha256_hex(bytes);
}

Gateway::Gateway(std::vector<vm::NodeSpec> fleet, GatewayOptions options)
    : options_(std::move(options)),
      fleet_(std::move(fleet)),
      artifact_store_([&]() -> std::unique_ptr<ArtifactStore> {
        if (options_.artifact_dir.empty()) return nullptr;
        ArtifactStoreOptions store_options;
        store_options.dir = options_.artifact_dir;
        store_options.max_bytes = options_.artifact_max_bytes;
        return std::make_unique<ArtifactStore>(std::move(store_options));
      }()),
      registry_(options_.registry_shards),
      farm_(registry_,
            [&] {
              // The gateway's workers carry the fan-out; an inner pool at
              // hardware concurrency would only idle.
              BuildFarmOptions farm_options = options_.farm;
              if (farm_options.threads == 0) farm_options.threads = 1;
              farm_options.artifact_store = artifact_store_.get();
              return farm_options;
            }()),
      scheduler_(registry_, farm_, [&] {
        DeploySchedulerOptions sched_options = options_.scheduler;
        if (sched_options.threads == 0) sched_options.threads = 1;
        sched_options.artifact_store = artifact_store_.get();
        return sched_options;
      }()) {
  // A zero bound would make every blocking submit() unsatisfiable.
  if (options_.max_queue == 0) options_.max_queue = 1;
  requests_ = &metrics_.counter("gateway.requests");
  admitted_ = &metrics_.counter("gateway.admitted");
  rejected_ = &metrics_.counter("gateway.rejected");
  completed_ = &metrics_.counter("gateway.completed");
  failed_ = &metrics_.counter("gateway.failed");
  backpressure_waits_ = &metrics_.counter("gateway.backpressure_waits");
  vm_runs_ = &metrics_.counter("vm.runs");
  vm_instructions_ = &metrics_.counter("vm.instructions");
  queue_depth_ = &metrics_.gauge("gateway.queue_depth");
  in_flight_ = &metrics_.gauge("gateway.in_flight");
  queue_hist_ = &metrics_.histogram("gateway.queue_seconds");
  deploy_hist_ = &metrics_.histogram("gateway.deploy_seconds");
  run_hist_ = &metrics_.histogram("gateway.run_seconds");
  total_hist_ = &metrics_.histogram("gateway.total_seconds");

  // The existing caches report into the same registry: both
  // whole-deployment caches (IR scheduler + source farm) feed one set of
  // specialization metrics, the farm's per-image TU caches feed the TU
  // metrics.
  auto* spec_hits = &metrics_.counter("spec_cache.hits");
  auto* spec_disk_hits = &metrics_.counter("spec_cache.disk_hits");
  auto* spec_misses = &metrics_.counter("spec_cache.misses");
  auto* spec_failures = &metrics_.counter("spec_cache.deploy_failures");
  auto* lowering_hist = &metrics_.histogram("spec_cache.lowering_seconds");
  const auto spec_observer =
      [spec_hits, spec_disk_hits, spec_misses, spec_failures,
       lowering_hist](const SpecializationCache::Event& event) {
        if (event.hit) {
          spec_hits->add(1);
          return;
        }
        if (event.disk_hit) {
          spec_disk_hits->add(1);
          return;
        }
        spec_misses->add(1);
        lowering_hist->observe(event.deploy_seconds);
        if (!event.ok) spec_failures->add(1);
      };
  scheduler_.cache().set_observer(spec_observer);
  farm_.cache().set_observer(spec_observer);

  auto* tu_hits = &metrics_.counter("tu_cache.hits");
  auto* tu_disk_hits = &metrics_.counter("tu_cache.disk_hits");
  auto* tu_compiles = &metrics_.counter("tu_cache.compiles");
  auto* tu_hist = &metrics_.histogram("tu_cache.compile_seconds");
  farm_.set_tu_observer(
      [tu_hits, tu_disk_hits, tu_compiles,
       tu_hist](const minicc::CompileCache::CompileEvent& event) {
        if (event.tu_cache_hit) {
          tu_hits->add(1);
          return;
        }
        if (event.disk_hit) {
          tu_disk_hits->add(1);
          return;
        }
        tu_compiles->add(1);
        tu_hist->observe(event.seconds);
      });

  if (artifact_store_) {
    auto* store_hits = &metrics_.counter("artifact_store.disk_hits");
    auto* store_misses = &metrics_.counter("artifact_store.disk_misses");
    auto* store_writes = &metrics_.counter("artifact_store.writes");
    auto* store_evictions = &metrics_.counter("artifact_store.evictions");
    auto* store_verify_failures =
        &metrics_.counter("artifact_store.verify_failures");
    artifact_store_->set_observer(
        [store_hits, store_misses, store_writes, store_evictions,
         store_verify_failures](const ArtifactStore::Event& event) {
          switch (event.kind) {
            case ArtifactStore::Event::Kind::DiskHit:
              store_hits->add(1);
              break;
            case ArtifactStore::Event::Kind::DiskMiss:
              store_misses->add(1);
              break;
            case ArtifactStore::Event::Kind::Write:
              store_writes->add(1);
              break;
            case ArtifactStore::Event::Kind::Eviction:
              store_evictions->add(1);
              break;
            case ArtifactStore::Event::Kind::VerifyFailure:
              store_verify_failures->add(1);
              break;
          }
        });
  }

  load_.reserve(fleet_.size());
  for (std::size_t i = 0; i < fleet_.size(); ++i) {
    load_.push_back(std::make_unique<NodeLoad>());
  }

  std::size_t worker_count = options_.worker_threads;
  if (worker_count == 0) {
    worker_count = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(worker_count);
  for (std::size_t i = 0; i < worker_count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Gateway::~Gateway() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_workers_.notify_all();
  cv_space_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::future<RunResult> Gateway::submit(RunRequest request) {
  requests_->add(1);
  std::promise<RunResult> promise;
  auto future = promise.get_future();

  std::unique_lock lock(mutex_);
  if (!stop_ && queue_.size() >= options_.max_queue) {
    if (options_.reject_on_full) {
      lock.unlock();
      promise.set_value(
          reject(request, "gateway queue full (" +
                              std::to_string(options_.max_queue) +
                              " requests waiting)"));
      return future;
    }
    backpressure_waits_->add(1);
    cv_space_.wait(lock,
                   [&] { return stop_ || queue_.size() < options_.max_queue; });
  }
  if (stop_) {
    lock.unlock();
    promise.set_value(reject(request, "gateway is shutting down"));
    return future;
  }
  admitted_->add(1);
  queue_depth_->add(1);
  const std::uint64_t seq = next_seq_++;
  queue_.emplace(
      std::make_pair(-static_cast<std::int64_t>(request.priority), seq),
      Job{std::move(request), std::move(promise), Clock::now()});
  lock.unlock();
  cv_workers_.notify_one();
  return future;
}

std::vector<RunResult> Gateway::run_all(std::vector<RunRequest> requests) {
  std::vector<std::future<RunResult>> futures;
  futures.reserve(requests.size());
  for (auto& request : requests) futures.push_back(submit(std::move(request)));
  std::vector<RunResult> results;
  results.reserve(futures.size());
  for (auto& future : futures) results.push_back(future.get());
  return results;
}

std::size_t Gateway::queue_depth() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

void Gateway::worker_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock lock(mutex_);
      cv_workers_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      job = std::move(queue_.begin()->second);
      queue_.erase(queue_.begin());
    }
    cv_space_.notify_one();
    queue_depth_->add(-1);
    in_flight_->add(1);
    // Queue wait is admission→dequeue, measured here so resolve/routing
    // overheads inside execute() are never misattributed to the queue.
    const double queue_seconds = seconds_since(job.admitted);

    RunResult result = execute(job.request);
    result.total_seconds = seconds_since(job.admitted);
    result.queue_seconds = queue_seconds;
    queue_hist_->observe(result.queue_seconds);
    total_hist_->observe(result.total_seconds);
    (result.ok ? completed_ : failed_)->add(1);

    in_flight_->add(-1);
    finish(std::move(job), std::move(result));
  }
}

void Gateway::finish(Job job, RunResult result) {
  result.completion_seq = completion_seq_.fetch_add(1) + 1;
  job.promise.set_value(std::move(result));
}

RunResult Gateway::reject(RunRequest& request, const std::string& reason) {
  (void)request;
  rejected_->add(1);
  RunResult result;
  result.error = reason;
  result.completion_seq = completion_seq_.fetch_add(1) + 1;
  return result;
}

int Gateway::route(const container::Image& image, const RunRequest& request) {
  const std::size_t n = fleet_.size();
  if (n == 0) return -1;
  // Rotate the scan start so equal-load compatible nodes share work.
  const std::size_t start =
      static_cast<std::size_t>(route_rr_.fetch_add(1) % n);
  int best = -1;
  int best_load = std::numeric_limits<int>::max();
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t i = (start + k) % n;
    const vm::NodeSpec& node = fleet_[i];
    if (!node_serves_arch(node, image.architecture)) continue;
    if (request.march) {
      // An explicit march the node cannot execute would only fail the
      // plan downstream — route around it up front.
      if (isa::arch_of(*request.march) != node.cpu.arch ||
          !isa::runs_on(*request.march, node.best_vector_isa())) {
        continue;
      }
    }
    const int load = load_[i]->active.load(std::memory_order_relaxed);
    if (load < best_load) {
      best = static_cast<int>(i);
      best_load = load;
    }
  }
  return best;
}

RunResult Gateway::execute(RunRequest& request) {
  RunResult out;

  const auto digest = registry_.resolve(request.image_reference);
  if (!digest) {
    out.error = "image not found in registry: " + request.image_reference;
    return out;
  }
  const auto image = registry_.pull(*digest);  // shared, no layer copy

  const int node_index = route(*image, request);
  if (node_index < 0) {
    out.error = "no compatible node in fleet for " + request.image_reference +
                " (architecture " + image->architecture +
                (request.march ? ", march " +
                                     std::string(isa::to_string(*request.march))
                               : "") +
                ")";
    return out;
  }
  const vm::NodeSpec& node = fleet_[static_cast<std::size_t>(node_index)];
  out.node_name = node.name;
  NodeLoad& load = *load_[static_cast<std::size_t>(node_index)];
  load.active.fetch_add(1, std::memory_order_relaxed);

  // Deploy: the scheduler routes source images to the farm by the
  // container-kind annotation; both paths land in a specialization cache,
  // so repeat (image, config, target) requests reuse the cached app.
  MixedDeployRequest deploy_request;
  deploy_request.node = node;
  deploy_request.image_reference = *digest;
  deploy_request.selections = request.selections;
  deploy_request.march = request.march;
  deploy_request.opt_level = request.opt_level;
  deploy_request.auto_specialize = request.auto_specialize;
  const auto t_deploy = Clock::now();
  const FleetDeployResult deployed = scheduler_.deploy(deploy_request);
  out.deploy_seconds = seconds_since(t_deploy);
  deploy_hist_->observe(out.deploy_seconds);
  if (!deployed.ok) {
    load.active.fetch_sub(1, std::memory_order_relaxed);
    out.error = deployed.error;
    return out;
  }
  out.configuration = deployed.configuration;
  out.spec_cache_hit = deployed.cache_hit;
  // Memoized at deploy time; falling back to a fresh digest only covers
  // hand-constructed apps that never went through a deploy path.
  out.image_digest = deployed.app->image_digest.empty()
                         ? deployed.app->image.digest()
                         : deployed.app->image_digest;

  // Run on the routed node through the shared pre-decoded program; the
  // stats hook streams VM counters into telemetry.
  vm::ExecutorOptions exec_options;
  exec_options.threads = request.threads;
  exec_options.stats_hook = [this](const vm::RunResult& run) {
    vm_runs_->add(1);
    if (run.instructions > 0) {
      vm_instructions_->add(static_cast<std::uint64_t>(run.instructions));
    }
  };
  const auto t_run = Clock::now();
  out.run = deployed.app->run_on(node, request.workload, exec_options);
  out.run_seconds = seconds_since(t_run);
  run_hist_->observe(out.run_seconds);
  load.active.fetch_sub(1, std::memory_order_relaxed);

  if (!out.run.ok) {
    out.error = "run failed: " + out.run.error;
    return out;
  }
  out.numerics_digest = numerics_digest(out.run, request.workload);
  out.ok = true;
  return out;
}

}  // namespace xaas::service
