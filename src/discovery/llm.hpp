// Simulated LLM specialization-point extraction (§3.2, §6.2, Table 4).
//
// The paper sends CMake configurations to seven commercial models with an
// in-context-learning prompt (Appendix A) and scores the returned JSON
// against a human-built ground truth. No model API is available offline,
// so each model is replaced by a calibrated error process over the ground
// truth: items are dropped (recall loss), hallucinated (precision loss),
// renamed with hyphen/underscore/-D-prefix mangling (the §6.2 "minor
// discrepancies" that normalization repairs), or filed under the wrong
// category ("mixing FFT and linear algebra libraries"). Latency, token
// counts, and dollar cost follow per-model distributions. All draws come
// from a seeded RNG, so Table 4 regenerates identically.
#pragma once

#include <string>
#include <vector>

#include "buildsys/script.hpp"
#include "common/rng.hpp"
#include "spec/spec.hpp"

namespace xaas::discovery {

struct ModelProfile {
  std::string name;     // e.g. "gemini-flash-2-exp"
  std::string vendor;   // "Google" | "Anthropic" | "OpenAI"

  // Error process (base rates; reduced by in-context examples).
  double drop_rate = 0.1;           // P(miss a ground-truth item)
  double hallucination_rate = 0.05; // expected fake items per 10 real items
  double rename_rate = 0.05;        // P(mangle name/flag formatting)
  double category_mix_rate = 0.02;  // P(file item under sibling category)
  double run_variance = 0.02;       // per-run jitter of drop rate (consistency)
  double no_examples_penalty = 2.5; // error multiplier without in-context examples

  // Cost/latency model.
  double tokens_per_char = 0.30;    // tokenizer density
  double prompt_overhead_tokens = 900.0;  // instructions + schema + examples
  double out_tokens_mean = 2000.0;
  double out_tokens_dev = 150.0;
  double latency_base_s = 2.0;
  double latency_per_ktok_s = 4.0;  // per 1000 output tokens
  double latency_tail_s = 0.0;      // occasional long-tail stall (adds up to this)
  double usd_per_1m_in = 1.0;
  double usd_per_1m_out = 5.0;
};

/// The seven models evaluated in Table 4.
const std::vector<ModelProfile>& model_zoo();
const ModelProfile& model(const std::string& name);

struct ExtractionRun {
  spec::SpecializationPoints output;
  long long tokens_in = 0;
  double tokens_out = 0.0;
  double latency_s = 0.0;
  double cost_usd = 0.0;
};

/// One prompt round trip: ground truth is derived from the script, then
/// corrupted per the model's error profile. `in_context_examples`
/// corresponds to the paper's prompt with GROMACS/QE/Kokkos examples;
/// without them (the llama.cpp generalization study) error rates rise.
ExtractionRun run_extraction(const ModelProfile& model,
                             const buildsys::BuildScript& script,
                             const std::string& script_text,
                             bool in_context_examples, common::Rng& rng);

}  // namespace xaas::discovery
