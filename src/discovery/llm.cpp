#include "discovery/llm.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/strings.hpp"
#include "discovery/metrics.hpp"

namespace xaas::discovery {

namespace {

std::vector<ModelProfile> build_zoo() {
  std::vector<ModelProfile> zoo;

  // Profiles calibrated against Table 4: gemini models lead (large
  // context window), claude-3-5 drops options (recall ~0.54), o3-mini is
  // strong but inconsistent and verbose, gpt-4o is inconsistent.
  {
    ModelProfile m;
    m.name = "gemini-flash-1.5-exp";
    m.vendor = "Google";
    m.drop_rate = 0.09;
    m.hallucination_rate = 0.10;
    m.rename_rate = 0.04;
    m.category_mix_rate = 0.03;  // mixed FFT/BLAS noted in §6.2
    m.run_variance = 0.02;
    m.tokens_per_char = 0.285;
    m.out_tokens_mean = 2333.0;
    m.out_tokens_dev = 147.0;
    m.latency_base_s = 6.0;
    m.latency_per_ktok_s = 4.4;
    m.usd_per_1m_in = 0.075;
    m.usd_per_1m_out = 0.3;
    zoo.push_back(m);
  }
  {
    ModelProfile m;
    m.name = "gemini-flash-2-exp";
    m.vendor = "Google";
    m.drop_rate = 0.02;
    m.hallucination_rate = 0.02;
    m.rename_rate = 0.01;
    m.category_mix_rate = 0.01;
    m.run_variance = 0.03;
    m.tokens_per_char = 0.285;
    m.out_tokens_mean = 2610.0;
    m.out_tokens_dev = 189.0;
    m.latency_base_s = 4.0;
    m.latency_per_ktok_s = 3.0;
    m.usd_per_1m_in = 0.1;
    m.usd_per_1m_out = 0.4;
    zoo.push_back(m);
  }
  {
    ModelProfile m;
    m.name = "claude-3-5-haiku-20241022";
    m.vendor = "Anthropic";
    m.drop_rate = 0.45;  // returns only a subset of options (§6.2)
    m.hallucination_rate = 0.12;
    m.rename_rate = 0.05;
    m.category_mix_rate = 0.02;
    m.run_variance = 0.03;
    m.tokens_per_char = 0.32;
    m.out_tokens_mean = 1569.0;
    m.out_tokens_dev = 174.0;
    m.latency_base_s = 13.0;
    m.latency_per_ktok_s = 4.5;
    m.usd_per_1m_in = 0.8;
    m.usd_per_1m_out = 4.0;
    zoo.push_back(m);
  }
  {
    ModelProfile m;
    m.name = "claude-3-5-sonnet-20241022";
    m.vendor = "Anthropic";
    m.drop_rate = 0.45;
    m.hallucination_rate = 0.10;
    m.rename_rate = 0.04;
    m.category_mix_rate = 0.02;
    m.run_variance = 0.01;  // consistent, but consistently incomplete
    m.tokens_per_char = 0.32;
    m.out_tokens_mean = 1529.0;
    m.out_tokens_dev = 39.0;
    m.latency_base_s = 18.0;
    m.latency_per_ktok_s = 6.0;
    m.latency_tail_s = 900.0;  // the 126 ± 335 s tail in Table 4
    m.usd_per_1m_in = 3.0;
    m.usd_per_1m_out = 15.0;
    zoo.push_back(m);
  }
  {
    ModelProfile m;
    m.name = "claude-3-7-sonnet-20250219";
    m.vendor = "Anthropic";
    m.drop_rate = 0.10;
    m.hallucination_rate = 0.13;
    m.rename_rate = 0.04;
    m.category_mix_rate = 0.02;
    m.run_variance = 0.015;
    m.tokens_per_char = 0.32;
    m.out_tokens_mean = 3123.0;
    m.out_tokens_dev = 155.0;
    m.latency_base_s = 30.0;
    m.latency_per_ktok_s = 6.0;
    m.latency_tail_s = 60.0;
    m.usd_per_1m_in = 3.0;
    m.usd_per_1m_out = 15.0;
    zoo.push_back(m);
  }
  {
    ModelProfile m;
    m.name = "o3-mini-2025-01-31";
    m.vendor = "OpenAI";
    m.drop_rate = 0.08;
    m.hallucination_rate = 0.08;
    m.rename_rate = 0.03;
    m.category_mix_rate = 0.02;
    m.run_variance = 0.12;  // F1 min 0.56 / med 0.92: inconsistent runs
    m.tokens_per_char = 0.245;
    m.out_tokens_mean = 8004.0;  // reasoning tokens
    m.out_tokens_dev = 1161.0;
    m.latency_base_s = 70.0;
    m.latency_per_ktok_s = 4.8;
    m.latency_tail_s = 80.0;
    m.usd_per_1m_in = 1.1;
    m.usd_per_1m_out = 4.4;
    zoo.push_back(m);
  }
  {
    ModelProfile m;
    m.name = "gpt-4o-2024-08-06";
    m.vendor = "OpenAI";
    m.drop_rate = 0.25;
    m.hallucination_rate = 0.12;
    m.rename_rate = 0.06;
    m.category_mix_rate = 0.05;  // mixed FFT/BLAS noted in §6.2
    m.run_variance = 0.10;
    m.tokens_per_char = 0.245;
    m.out_tokens_mean = 1540.0;
    m.out_tokens_dev = 146.0;
    m.latency_base_s = 18.0;
    m.latency_per_ktok_s = 5.0;
    m.latency_tail_s = 15.0;
    m.usd_per_1m_in = 2.5;
    m.usd_per_1m_out = 10.0;
    zoo.push_back(m);
  }
  return zoo;
}

}  // namespace

const std::vector<ModelProfile>& model_zoo() {
  static const std::vector<ModelProfile> zoo = build_zoo();
  return zoo;
}

const ModelProfile& model(const std::string& name) {
  for (const auto& m : model_zoo()) {
    if (m.name == name) return m;
  }
  throw std::runtime_error("unknown model: " + name);
}

namespace {

// Formatting mangles the paper observed (§6.2): inconsistent
// hyphen/underscore, missing -D prefix, case drift.
std::string mangle(const std::string& s, common::Rng& rng) {
  switch (rng.next_below(3)) {
    case 0: return common::replace_all(s, "_", "-");
    case 1: {
      if (common::starts_with(s, "-D")) return s.substr(2);
      return common::to_lower(s);
    }
    default: return common::to_lower(s);
  }
}

// Plausible hallucinations per category: libraries that exist in the HPC
// ecosystem but are not specialization points of this application.
const std::vector<std::pair<const char*, const char*>> kHallucinations = {
    {spec::kCategoryFft, "VkFFT"},     {spec::kCategoryFft, "clFFT"},
    {spec::kCategoryBlas, "BLIS"},     {spec::kCategoryBlas, "ScaLAPACK"},
    {spec::kCategoryGpu, "METAL"},     {spec::kCategoryParallel, "OpenACC"},
    {spec::kCategoryOther, "Kokkos"},  {spec::kCategoryOther, "Boost"},
    {spec::kCategorySimd, "AMX"},      {spec::kCategoryParallel, "pthreads"},
};

std::vector<spec::FeatureEntry>* category_list(spec::SpecializationPoints& sp,
                                               const std::string& category) {
  if (category == spec::kCategoryGpu) return &sp.gpu_backends;
  if (category == spec::kCategoryParallel) return &sp.parallel_libraries;
  if (category == spec::kCategoryBlas) return &sp.linear_algebra_libraries;
  if (category == spec::kCategoryFft) return &sp.fft_libraries;
  if (category == spec::kCategorySimd) return &sp.simd_levels;
  if (category == spec::kCategoryOther) return &sp.other_libraries;
  if (category == spec::kCategoryInternal) return &sp.internal_builds;
  return nullptr;
}

// FFT <-> BLAS are the sibling categories the paper saw models confuse.
std::string sibling_category(const std::string& category) {
  if (category == spec::kCategoryFft) return spec::kCategoryBlas;
  if (category == spec::kCategoryBlas) return spec::kCategoryFft;
  if (category == spec::kCategoryOther) return spec::kCategoryParallel;
  return spec::kCategoryOther;
}

}  // namespace

ExtractionRun run_extraction(const ModelProfile& model,
                             const buildsys::BuildScript& script,
                             const std::string& script_text,
                             bool in_context_examples, common::Rng& rng) {
  ExtractionRun run;

  const double penalty = in_context_examples ? 1.0 : model.no_examples_penalty;
  // Per-run jitter models run-to-run inconsistency (o3-mini, gpt-4o).
  const double jitter = rng.normal(0.0, model.run_variance);
  const auto clamp01 = [](double v) { return std::min(0.95, std::max(0.0, v)); };
  const double drop = clamp01(model.drop_rate * penalty + jitter);
  const double hallucinate = clamp01(model.hallucination_rate * penalty +
                                     std::max(0.0, jitter));
  const double rename = clamp01(model.rename_rate * penalty);
  const double mix = clamp01(model.category_mix_rate * penalty);

  const spec::SpecializationPoints truth = spec::extract_ground_truth(script);
  spec::SpecializationPoints out;
  out.application = truth.application;
  out.gpu_build = truth.gpu_build;
  out.gpu_build_flag = truth.gpu_build_flag;
  out.build_system_type = truth.build_system_type;
  out.build_system_min_version = truth.build_system_min_version;
  out.compilers = truth.compilers;
  out.architectures = truth.architectures;
  for (const auto& f : truth.optimization_flags) {
    if (!rng.chance(drop)) out.optimization_flags.push_back(f);
  }

  const auto corrupt_into = [&](const std::string& category,
                                const std::vector<spec::FeatureEntry>& entries) {
    for (const auto& entry : entries) {
      if (rng.chance(drop)) continue;  // missed by the model
      spec::FeatureEntry e = entry;
      if (rng.chance(rename)) {
        e.name = mangle(e.name, rng);
        e.build_flag = mangle(e.build_flag, rng);
      }
      std::string target_category = category;
      if (rng.chance(mix)) target_category = sibling_category(category);
      if (auto* list = category_list(out, target_category)) {
        list->push_back(std::move(e));
      }
    }
    // Hallucinations scale with category size.
    for (const auto& entry : entries) {
      (void)entry;
      if (!rng.chance(hallucinate / 2.0)) continue;
      const auto& [hcat, hname] =
          kHallucinations[rng.next_below(kHallucinations.size())];
      spec::FeatureEntry fake;
      fake.name = hname;
      fake.build_flag = "-DENABLE_" + common::to_lower(hname);
      if (auto* list = category_list(out, hcat)) list->push_back(fake);
    }
  };

  corrupt_into(spec::kCategoryGpu, truth.gpu_backends);
  corrupt_into(spec::kCategoryParallel, truth.parallel_libraries);
  corrupt_into(spec::kCategoryBlas, truth.linear_algebra_libraries);
  corrupt_into(spec::kCategoryFft, truth.fft_libraries);
  corrupt_into(spec::kCategorySimd, truth.simd_levels);
  corrupt_into(spec::kCategoryOther, truth.other_libraries);
  corrupt_into(spec::kCategoryInternal, truth.internal_builds);

  run.output = std::move(out);

  // Token / latency / cost model. Input tokens are deterministic per
  // model+document (same tokenizer every run — Table 4 shows ±0).
  run.tokens_in = static_cast<long long>(
      static_cast<double>(script_text.size()) * model.tokens_per_char +
      model.prompt_overhead_tokens);
  run.tokens_out =
      std::max(100.0, rng.normal(model.out_tokens_mean, model.out_tokens_dev));
  run.latency_s = model.latency_base_s +
                  model.latency_per_ktok_s * run.tokens_out / 1000.0 +
                  std::fabs(rng.normal(0.0, 1.0)) * 0.05 * model.latency_base_s;
  // Rare long-tail stall (claude-3-5-sonnet's 126 ± 335 s row).
  if (model.latency_tail_s > 0.0 && rng.chance(0.08)) {
    run.latency_s += rng.uniform(0.2, 1.0) * model.latency_tail_s;
  }
  run.cost_usd = static_cast<double>(run.tokens_in) / 1e6 * model.usd_per_1m_in +
                 run.tokens_out / 1e6 * model.usd_per_1m_out;
  return run;
}

}  // namespace xaas::discovery
