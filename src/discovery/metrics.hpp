// Scoring of specialization-point extraction (Table 4): flatten the
// nested schema into (category, name, flag) items, optionally normalize
// (§6.2: models often underperform due to minor discrepancies —
// inconsistent hyphen/underscore, missing -D prefix), then count
// true/false positives and negatives.
#pragma once

#include <string>
#include <vector>

#include "spec/spec.hpp"

namespace xaas::discovery {

struct Item {
  std::string category;
  std::string name;
  std::string flag;

  bool operator==(const Item& other) const {
    return category == other.category && name == other.name &&
           flag == other.flag;
  }
  bool operator<(const Item& other) const {
    if (category != other.category) return category < other.category;
    if (name != other.name) return name < other.name;
    return flag < other.flag;
  }
};

std::vector<Item> flatten(const spec::SpecializationPoints& sp);

/// Canonicalize hyphens/underscores, case, and the -D prefix so that
/// "-DGMX-SIMD" and "GMX_SIMD" compare equal.
Item normalize_item(const Item& item);

struct Metrics {
  int true_positives = 0;
  int false_positives = 0;
  int false_negatives = 0;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

/// Compare a predicted extraction against the ground truth.
Metrics score(const spec::SpecializationPoints& truth,
              const spec::SpecializationPoints& predicted,
              bool normalized);

/// Aggregate helpers for Table 4's Min/Median/Max presentation.
struct MinMedMax {
  double min = 0.0;
  double median = 0.0;
  double max = 0.0;
};
MinMedMax min_med_max(std::vector<double> values);

struct MeanDev {
  double mean = 0.0;
  double dev = 0.0;
};
MeanDev mean_dev(const std::vector<double>& values);

}  // namespace xaas::discovery
