#include "discovery/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/strings.hpp"

namespace xaas::discovery {

std::vector<Item> flatten(const spec::SpecializationPoints& sp) {
  std::vector<Item> items;
  const auto add = [&items](const char* category,
                            const std::vector<spec::FeatureEntry>& entries) {
    for (const auto& e : entries) {
      items.push_back({category, e.name, e.build_flag});
    }
  };
  add(spec::kCategoryGpu, sp.gpu_backends);
  add(spec::kCategoryParallel, sp.parallel_libraries);
  add(spec::kCategoryBlas, sp.linear_algebra_libraries);
  add(spec::kCategoryFft, sp.fft_libraries);
  add(spec::kCategorySimd, sp.simd_levels);
  add(spec::kCategoryOther, sp.other_libraries);
  add(spec::kCategoryInternal, sp.internal_builds);
  for (const auto& f : sp.optimization_flags) {
    items.push_back({"optimization_build_flags", f, f});
  }
  return items;
}

Item normalize_item(const Item& item) {
  const auto canon = [](const std::string& s) {
    std::string out = common::to_lower(s);
    out = common::replace_all(out, "-", "_");
    if (common::starts_with(out, "_d")) out = out.substr(2);  // "-D" prefix
    return out;
  };
  return {item.category, canon(item.name), canon(item.flag)};
}

Metrics score(const spec::SpecializationPoints& truth,
              const spec::SpecializationPoints& predicted, bool normalized) {
  std::vector<Item> truth_items = flatten(truth);
  std::vector<Item> pred_items = flatten(predicted);
  if (normalized) {
    for (auto& i : truth_items) i = normalize_item(i);
    for (auto& i : pred_items) i = normalize_item(i);
  }
  const std::set<Item> truth_set(truth_items.begin(), truth_items.end());
  const std::set<Item> pred_set(pred_items.begin(), pred_items.end());

  Metrics m;
  for (const auto& item : pred_set) {
    if (truth_set.count(item)) {
      ++m.true_positives;
    } else {
      ++m.false_positives;
    }
  }
  for (const auto& item : truth_set) {
    if (!pred_set.count(item)) ++m.false_negatives;
  }
  const double tp = m.true_positives;
  m.precision = (tp + m.false_positives) > 0
                    ? tp / (tp + m.false_positives)
                    : 0.0;
  m.recall = (tp + m.false_negatives) > 0 ? tp / (tp + m.false_negatives) : 0.0;
  m.f1 = (m.precision + m.recall) > 0
             ? 2.0 * m.precision * m.recall / (m.precision + m.recall)
             : 0.0;
  return m;
}

MinMedMax min_med_max(std::vector<double> values) {
  MinMedMax out;
  if (values.empty()) return out;
  std::sort(values.begin(), values.end());
  out.min = values.front();
  out.max = values.back();
  const std::size_t n = values.size();
  out.median = n % 2 == 1 ? values[n / 2]
                          : 0.5 * (values[n / 2 - 1] + values[n / 2]);
  return out;
}

MeanDev mean_dev(const std::vector<double>& values) {
  MeanDev out;
  if (values.empty()) return out;
  double sum = 0.0;
  for (double v : values) sum += v;
  out.mean = sum / static_cast<double>(values.size());
  double var = 0.0;
  for (double v : values) var += (v - out.mean) * (v - out.mean);
  out.dev = values.size() > 1
                ? std::sqrt(var / static_cast<double>(values.size() - 1))
                : 0.0;
  return out;
}

}  // namespace xaas::discovery
