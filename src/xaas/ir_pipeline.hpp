// IR container build pipeline (Fig. 7, §4.3): generate every build
// configuration, compare compile commands behaviorally, deduplicate
// translation units in stages —
//   Generation:     one configuration per specialization-point combination,
//                   built in a containerized environment so the build
//                   directory path never differs (flag normalization);
//   Preprocessing:  preprocess and hash each TU; identical hashes merge;
//   OpenMP:         TUs differing only in -fopenmp merge when an AST pass
//                   finds no OpenMP construct in the file;
//   Vectorization:  -m<isa> tuning flags are stripped and deferred to
//                   deployment (LLVM-style IR-level vectorization);
// then compile the surviving unique TUs to IR and pack the image.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "buildsys/configure.hpp"
#include "container/image.hpp"
#include "isa/isa.hpp"
#include "xaas/application.hpp"

namespace xaas {

struct IrBuildOptions {
  /// Specialization points to expand (option name -> values). The
  /// cartesian product defines the configuration set.
  std::map<std::string, std::vector<std::string>> points;

  // Pipeline stages — each can be disabled for the §6.4 / ablation
  // breakdowns.
  bool containerized_builds = true;   // normalize build-dir paths
  bool dedup_preprocessing = true;    // preprocess-hash merge
  bool detect_openmp = true;          // AST OpenMP-construct merge
  bool delay_vectorization = true;    // strip -m flags, vectorize at deploy

  /// Worker threads for preprocessing/compilation (0 = hardware).
  std::size_t threads = 0;
};

/// §6.4-style reduction statistics.
struct DedupStats {
  int configurations = 0;
  int total_tus = 0;        // sum over configurations
  int unique_irs = 0;       // IR files actually built
  int system_dependent = 0; // TUs shipped as source (Definition 2)
  double reduction_pct = 0.0;

  /// Before build-dir normalization, the fraction of TUs whose raw
  /// compile flags differ across configurations (paper: 96%).
  double flag_incompatible_pct = 0.0;
  /// Among TUs with config-dependent defines, the fraction whose
  /// preprocessed hash actually differs (paper: 14.3%).
  double preproc_distinct_pct = 0.0;
  /// Fraction of otherwise-identical TU pairs that differed only in CPU
  /// tuning flags, resolved by the vectorization stage (paper: 95%).
  double tuning_only_pct = 0.0;
  /// TUs merged because -fopenmp had no effect (no OpenMP constructs).
  int openmp_merged = 0;
};

/// One unique IR artifact and which (config, target, source) tuples it
/// serves.
struct IrArtifact {
  std::string path;          // path of the IR file inside the image
  std::string source;        // originating source file
  std::string flags;         // canonical flags used to produce it
  bool openmp = false;
  std::vector<std::string> used_by;  // configuration ids
};

struct IrContainerBuild {
  bool ok = false;
  std::string error;

  container::Image image;
  DedupStats stats;
  std::vector<IrArtifact> artifacts;
  std::vector<std::string> configuration_ids;
};

IrContainerBuild build_ir_container(const Application& app, isa::Arch arch,
                                    const IrBuildOptions& options);

}  // namespace xaas
