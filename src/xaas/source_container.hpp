// Source containers (§4.1, Fig. 6): ship application source + toolchain,
// build on the target system after feature discovery, specialization
// intersection, and user/operator selection. One image per toolchain and
// architecture — no combinatorial explosion, near-native performance.
#pragma once

#include <map>
#include <string>

#include "buildsys/configure.hpp"
#include "container/image.hpp"
#include "container/registry.hpp"
#include "minicc/lower.hpp"
#include "spec/intersect.hpp"
#include "vm/executor.hpp"
#include "vm/node.hpp"
#include "vm/program.hpp"
#include "xaas/application.hpp"

namespace xaas {

/// Build the distributable source image: source tree + build script +
/// toolchain marker, with the application's specialization points
/// embedded as an OCI annotation (§5.2).
container::Image build_source_image(const Application& app,
                                    isa::Arch arch);

/// A container deployed (specialized, built, lowered) for one system.
struct DeployedApp {
  bool ok = false;
  std::string error;

  container::Image image;                 // derived, system-specific image
  vm::Program program;                    // linked executable
  buildsys::Configuration configuration;  // resolved build configuration
  minicc::TargetSpec target;
  std::string node_name;
  std::vector<std::string> log;           // deployment steps, human-readable

  /// Pre-decoded execution form of `program`, shared across every node
  /// that received this deployment from the specialization cache; null
  /// until someone (service::DeployScheduler) decodes it.
  std::shared_ptr<const vm::DecodedProgram> decoded;

  /// Execute a workload on the node it was deployed for.
  vm::RunResult run(vm::Workload& workload, int threads = 1) const;

  /// Execute on an explicit node spec — the fleet path, where simulated
  /// nodes need not exist in the global vm::node registry.
  vm::RunResult run_on(const vm::NodeSpec& node, vm::Workload& workload,
                       int threads = 1) const;
};

struct SourceDeployOptions {
  /// Explicit option values (user selections); anything absent falls
  /// back to the intersection's recommendation or the script default.
  std::map<std::string, std::string> selections;
  /// Apply the recommendation policy for unselected points (best SIMD,
  /// native GPU backend). Naive builds set this to false.
  bool auto_specialize = true;
  /// Vector ISA override; by default the node's best supported level
  /// (or the SIMD selection if one was made).
  std::optional<isa::VectorIsa> march;
  int opt_level = 2;
};

/// The Fig. 6 flow: system discovery -> intersection -> selection ->
/// on-system build -> deployed image.
DeployedApp deploy_source_container(const container::Image& source_image,
                                    const Application& app,
                                    const vm::NodeSpec& node,
                                    const SourceDeployOptions& options = {});

}  // namespace xaas
