// Source containers (§4.1, Fig. 6): ship application source + toolchain,
// build on the target system after feature discovery, specialization
// intersection, and user/operator selection. One image per toolchain and
// architecture — no combinatorial explosion, near-native performance.
#pragma once

#include <map>
#include <string>

#include "buildsys/configure.hpp"
#include "container/image.hpp"
#include "container/registry.hpp"
#include "minicc/lower.hpp"
#include "spec/intersect.hpp"
#include "vm/executor.hpp"
#include "vm/node.hpp"
#include "vm/program.hpp"
#include "xaas/application.hpp"

namespace xaas::minicc {
class CompileCache;
}

namespace xaas {

/// Build the distributable source image: source tree + build script +
/// toolchain marker, with the application's specialization points
/// embedded as an OCI annotation (§5.2).
container::Image build_source_image(const Application& app,
                                    isa::Arch arch);

/// A container deployed (specialized, built, lowered) for one system.
struct DeployedApp {
  bool ok = false;
  std::string error;

  container::Image image;                 // derived, system-specific image
  /// Content digest of `image`, memoized at deploy time (==
  /// image.digest(); empty on failed deployments) so serving-path
  /// completions don't re-serialize the manifest per request.
  std::string image_digest;
  vm::Program program;                    // linked executable
  buildsys::Configuration configuration;  // resolved build configuration
  minicc::TargetSpec target;
  std::string node_name;
  std::vector<std::string> log;           // deployment steps, human-readable

  /// Pre-decoded execution form of `program`, shared across every node
  /// that received this deployment from the specialization cache; null
  /// until someone (service::DeployScheduler) decodes it.
  std::shared_ptr<const vm::DecodedProgram> decoded;

  /// Execute a workload on the node it was deployed for.
  vm::RunResult run(vm::Workload& workload, int threads = 1) const;

  /// Execute on an explicit node spec — the fleet path, where simulated
  /// nodes need not exist in the global vm::node registry.
  vm::RunResult run_on(const vm::NodeSpec& node, vm::Workload& workload,
                       int threads = 1) const;

  /// Fully-optioned variant: the serving layer passes its per-run stats
  /// hook (and any tuning) through to the executor.
  vm::RunResult run_on(const vm::NodeSpec& node, vm::Workload& workload,
                       const vm::ExecutorOptions& exec_options) const;
};

struct SourceDeployOptions {
  /// Explicit option values (user selections); anything absent falls
  /// back to the intersection's recommendation or the script default.
  std::map<std::string, std::string> selections;
  /// Apply the recommendation policy for unselected points (best SIMD,
  /// native GPU backend). Naive builds set this to false.
  bool auto_specialize = true;
  /// Vector ISA override; by default the node's best supported level
  /// (or the SIMD selection if one was made). An explicit march the node
  /// cannot execute is a deployment error; a *selected* SIMD level beyond
  /// the node's ladder is clamped to its best supported level (the same
  /// contract as the IR path's recorded tuning).
  std::optional<isa::VectorIsa> march;
  int opt_level = 2;
};

/// The resolved front half of a source deployment: discovery →
/// intersection → selection → configure → target resolution, nothing
/// compiled. `configuration.option_values` (every option, defaults
/// included) plus `target` fully determine the build — the build farm's
/// whole-deployment cache key is
/// (source image digest, canonical option values, target).
struct SourceDeployPlan {
  bool ok = false;
  std::string error;

  buildsys::Configuration configuration;
  minicc::TargetSpec target;  // resolved, clamped to the node's ISA ladder
  std::vector<std::string> log;  // node-specific steps (discovery, selection)
};

/// Resolve the cheap half of deploy_source_container for a node: no
/// translation unit is compiled.
SourceDeployPlan plan_source_deploy(const container::Image& source_image,
                                    const Application& app,
                                    const vm::NodeSpec& node,
                                    const SourceDeployOptions& options = {});

/// The build half: compile every TU of the plan's configuration for the
/// plan's target, link, derive the system-specific image. A pure function
/// of (source image, plan) — node-agnostic (no node name is recorded), so
/// equal plans on one image produce bit-identical deployments. When
/// `tu_cache` is non-null, per-TU compiles are routed through it and
/// shared with every other deployment of the same source tree.
DeployedApp build_source_deploy(const container::Image& source_image,
                                const Application& app,
                                const SourceDeployPlan& plan,
                                minicc::CompileCache* tu_cache = nullptr);

/// The Fig. 6 flow: system discovery -> intersection -> selection ->
/// on-system build -> deployed image. Equivalent to plan_source_deploy +
/// build_source_deploy with the node recorded for run().
DeployedApp deploy_source_container(const container::Image& source_image,
                                    const Application& app,
                                    const vm::NodeSpec& node,
                                    const SourceDeployOptions& options = {});

/// An application reconstructed from a source image (the image ships the
/// full source tree and xbuild script, §4.1) — deployment does not
/// require the original Application object. `system_dependent_globs` and
/// `entry_point` are not stored in the image; source deployments compile
/// every TU on-node, so neither affects the build (set the entry point on
/// the workload when running).
struct SourceImageApp {
  bool ok = false;
  std::string error;
  Application app;
};

SourceImageApp application_from_source_image(const container::Image& image);

}  // namespace xaas
