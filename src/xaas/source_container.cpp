#include "xaas/source_container.hpp"

#include "common/json.hpp"
#include "common/strings.hpp"
#include "minicc/compile_cache.hpp"
#include "minicc/driver.hpp"
#include "spec/system.hpp"

namespace xaas {

using common::Json;

namespace {

// "-DNAME=VALUE" -> {NAME, VALUE}; "-DNAME" -> {NAME, "ON"}.
std::pair<std::string, std::string> parse_flag(const std::string& flag) {
  std::string body = flag;
  if (common::starts_with(body, "-D")) body = body.substr(2);
  const auto eq = body.find('=');
  if (eq == std::string::npos) return {body, "ON"};
  return {body.substr(0, eq), body.substr(eq + 1)};
}

common::Vfs toolchain_layer(isa::Arch arch) {
  common::Vfs files;
  Json meta = Json::object();
  meta["compiler"] = "minicc";
  meta["version"] = "19.0";
  meta["exports_ir"] = true;
  meta["architecture"] = std::string(isa::to_string(arch));
  files.write("opt/toolchain/minicc.json", meta.dump(2));
  files.write("opt/toolchain/bin/minicc", "#!xaas-toolchain minicc 19.0\n");
  // Open-source MPI with the portable MPICH ABI ships in the image
  // (§4.1: "deliver the application source code, an open-source MPI
  // implementation, and the build toolchain").
  files.write("opt/mpich/lib/libmpi.so", "!abi:mpich\nmpich 4.1 generic\n");
  return files;
}

}  // namespace

container::Image build_source_image(const Application& app, isa::Arch arch) {
  common::Vfs source_layer;
  for (const auto& [path, contents] : app.source_tree) {
    source_layer.write("app/" + path, contents);
  }
  source_layer.write("app/xbuild.txt", app.build_script_text);

  return container::ImageBuilder()
      .architecture(arch == isa::Arch::X86_64 ? container::kArchAmd64
                                              : container::kArchArm64)
      .add_layer(toolchain_layer(arch))
      .add_layer(std::move(source_layer))
      .annotation(container::kAnnotationKind, "source")
      .annotation(container::kAnnotationSpecPoints,
                  app.ground_truth().to_json().dump())
      .config("entrypoint", Json("/xaas/deploy"))
      .build();
}

vm::RunResult DeployedApp::run(vm::Workload& workload, int threads) const {
  if (node_name.empty()) {
    // Node-agnostic deployment (a shared specialization-cache entry):
    // there is no "its node" to run on. Fail like every other run-path
    // error instead of letting vm::node() throw.
    vm::RunResult result;
    result.error =
        "deployment is node-agnostic (shared cache entry); use "
        "run_on(node, ...) or FleetDeployResult::run";
    return result;
  }
  return run_on(vm::node(node_name), workload, threads);
}

vm::RunResult DeployedApp::run_on(const vm::NodeSpec& node,
                                  vm::Workload& workload, int threads) const {
  vm::ExecutorOptions exec_options;
  exec_options.threads = threads;
  return run_on(node, workload, exec_options);
}

vm::RunResult DeployedApp::run_on(
    const vm::NodeSpec& node, vm::Workload& workload,
    const vm::ExecutorOptions& exec_options) const {
  const vm::Executor executor(program, node, exec_options, decoded);
  return executor.run(workload);
}

SourceDeployPlan plan_source_deploy(const container::Image& source_image,
                                    const Application& app,
                                    const vm::NodeSpec& node,
                                    const SourceDeployOptions& options) {
  SourceDeployPlan plan;

  // Architecture gate: a source container is per-ISA (x64 / ARM64).
  const std::string node_arch = node.cpu.arch == isa::Arch::X86_64
                                    ? container::kArchAmd64
                                    : container::kArchArm64;
  if (source_image.architecture != node_arch) {
    plan.error = "source image architecture " + source_image.architecture +
                 " does not match node " + node_arch;
    return plan;
  }

  // 1. System discovery on the compute node (Fig. 6).
  const spec::SystemFeatures system = spec::discover_system(node);
  plan.log.push_back("discovered system '" + node.name + "': " +
                     system.microarch);

  // 2. Specialization points from the image annotation, intersected with
  //    the system.
  const auto annotation =
      source_image.annotations.find(container::kAnnotationSpecPoints);
  if (annotation == source_image.annotations.end()) {
    plan.error = "image carries no specialization-point annotation";
    return plan;
  }
  const spec::SpecializationPoints app_points =
      spec::SpecializationPoints::from_json(Json::parse(annotation->second));
  const spec::CommonSpecialization common =
      spec::intersect(app_points, system);
  plan.log.push_back(
      "intersection: " + std::to_string(common.gpu_backends.size()) +
      " GPU backend(s), " + std::to_string(common.simd_levels.size()) +
      " SIMD level(s)");

  // 3. Selection: user choices override; the recommendation policy fills
  //    the rest (§4.1 — operators may supply preferred configurations).
  std::map<std::string, std::string> values = options.selections;
  if (options.auto_specialize) {
    const auto select_from = [&values](const spec::FeatureEntry& entry) {
      if (entry.build_flag.empty()) return;
      const auto [name, value] = parse_flag(entry.build_flag);
      if (!values.count(name)) values[name] = value;
    };
    select_from(common.best_simd_level());
    select_from(common.best_gpu_backend());
    // Performance libraries: prefer MKL when the system has it.
    const auto prefer_library = [&](const std::vector<spec::FeatureEntry>& list) {
      const spec::FeatureEntry* chosen = nullptr;
      for (const auto& e : list) {
        if (common::to_lower(e.name) == "mkl") chosen = &e;
      }
      if (!chosen && !list.empty()) chosen = &list.back();
      if (chosen) select_from(*chosen);
    };
    prefer_library(common.fft_libraries);
    prefer_library(common.linear_algebra_libraries);
  }
  for (const auto& [name, value] : values) {
    plan.log.push_back("selected " + name + "=" + value);
  }

  // 4. Configure against the node environment.
  buildsys::Environment env;
  env.build_dir = "/xaas/build";
  env.dependencies = system.libraries;
  for (const auto& [name, version] : system.gpu_runtimes) {
    env.dependencies[name] = version;
  }
  for (const auto& [name, version] : system.compilers) {
    env.dependencies[name] = version;
  }

  plan.configuration = buildsys::configure(app.script, values, env);
  if (!plan.configuration.ok) {
    plan.error = "configuration failed: " + plan.configuration.error;
    return plan;
  }
  const buildsys::Configuration& config = plan.configuration;

  // Target: explicit march > SIMD selection > node best — clamped to what
  // the node can execute, mirroring the IR path: an unexecutable
  // *selected* tuning degrades to the node's ladder (a program that would
  // trap helps nobody), an unexecutable *explicit* march is an error.
  minicc::TargetSpec target;
  target.opt_level = options.opt_level;
  const isa::VectorIsa node_best = node.best_vector_isa();
  target.visa = node_best;
  for (const auto& opt : app.script.options) {
    if (!opt.is_simd) continue;
    const auto it = config.option_values.find(opt.name);
    if (it != config.option_values.end()) {
      if (const auto visa = isa::vector_isa_from_string(it->second)) {
        target.visa = *visa;
      } else if (it->second == "None") {
        target.visa = isa::VectorIsa::None;
      }
    }
  }
  if (options.march) {
    if (!isa::runs_on(*options.march, node_best)) {
      plan.error = "requested march " +
                   std::string(isa::to_string(*options.march)) +
                   " is not executable on node " + node.name +
                   " (supports up to " +
                   std::string(isa::to_string(node_best)) + ")";
      return plan;
    }
    target.visa = *options.march;
  } else if (!isa::runs_on(target.visa, node_best)) {
    plan.log.push_back("selected march " +
                       std::string(isa::to_string(target.visa)) +
                       " exceeds node support; clamped to " +
                       std::string(isa::to_string(node_best)));
    target.visa = node_best;
  }
  for (const auto& flag : config.global_flags) {
    if (flag == "-fopenmp") target.openmp = true;
  }
  plan.target = target;
  plan.ok = true;
  return plan;
}

DeployedApp build_source_deploy(const container::Image& source_image,
                                const Application& app,
                                const SourceDeployPlan& plan,
                                minicc::CompileCache* tu_cache) {
  DeployedApp result;
  if (!plan.ok) {
    result.error = plan.error.empty() ? "invalid deployment plan" : plan.error;
    return result;
  }
  result.configuration = plan.configuration;
  const minicc::TargetSpec target = plan.target;
  result.target = target;

  // On-system build: compile every translation unit for the plan's
  // target, link. With a compile cache, identical TUs — across nodes,
  // selections, even whole configurations — compile once.
  const auto commands = plan.configuration.compile_commands(app.source_tree);
  std::vector<minicc::MachineModule> modules;
  modules.reserve(commands.size());
  for (const auto& cmd : commands) {
    minicc::CompileFlags flags = minicc::CompileFlags::parse_args(cmd.args);
    flags.opt_level = target.opt_level;
    minicc::CompileError error;
    bool compiled_ok = false;
    if (tu_cache) {
      auto compiled =
          tu_cache->compile(app.source_tree, cmd.source, flags, target);
      compiled_ok = compiled.ok;
      error = compiled.error;
      // Program::link owns its modules; copying the shared module is far
      // cheaper than recompiling it.
      if (compiled.ok) modules.push_back(*compiled.machine);
    } else {
      auto compiled =
          minicc::compile_to_target(app.source_tree, cmd.source, flags, target);
      compiled_ok = compiled.ok;
      error = compiled.error;
      if (compiled.ok) modules.push_back(std::move(compiled.machine));
    }
    if (!compiled_ok) {
      result.error = "compilation of " + cmd.source + " failed (" +
                     error.phase + "): " + error.message;
      result.log.push_back("build step failed at translation unit " +
                           cmd.source + " (" + error.phase + "): " +
                           error.message);
      return result;
    }
  }
  result.log.push_back("compiled " + std::to_string(modules.size()) +
                       " translation units for " +
                       std::string(isa::to_string(target.visa)));

  std::string link_error;
  result.program = vm::Program::link(std::move(modules), &link_error);
  if (!result.program.ok()) {
    result.error = "link failed: " + link_error;
    result.log.push_back("build step failed at link: " + link_error);
    return result;
  }

  // Derived image: binaries + configuration record. The new image is
  // system-specific and no longer portable (§4.1). The record
  // deliberately names only (configuration, target), not the node: the
  // image is a pure function of (source image, plan), so every node
  // whose plan resolves identically shares one bit-identical artifact
  // (the build-farm cache contract; the node stays in DeployedApp).
  common::Vfs binaries;
  Json record = Json::object();
  record["configuration"] = plan.configuration.id();
  record["target"] = target.to_string();
  binaries.write("app/install/config.json", record.dump(2));
  for (std::size_t i = 0; i < commands.size(); ++i) {
    binaries.write("app/install/obj_" + std::to_string(i) + ".o",
                   "!target:" + target.to_string() + "\n" +
                       commands[i].source + "\n");
  }
  result.image = container::ImageBuilder(source_image)
                     .add_layer(std::move(binaries))
                     .annotation(container::kAnnotationKind, "deployed-source")
                     .annotation(container::kAnnotationDeployedConfig,
                                 plan.configuration.id() + "|" +
                                     target.to_string())
                     .build();
  result.image_digest = result.image.digest();
  result.ok = true;
  return result;
}

DeployedApp deploy_source_container(const container::Image& source_image,
                                    const Application& app,
                                    const vm::NodeSpec& node,
                                    const SourceDeployOptions& options) {
  const SourceDeployPlan plan =
      plan_source_deploy(source_image, app, node, options);
  if (!plan.ok) {
    DeployedApp result;
    result.node_name = node.name;
    result.error = plan.error;
    result.log = plan.log;
    return result;
  }
  DeployedApp result = build_source_deploy(source_image, app, plan, nullptr);
  result.node_name = node.name;
  result.log.insert(result.log.begin(), plan.log.begin(), plan.log.end());
  return result;
}

SourceImageApp application_from_source_image(const container::Image& image) {
  SourceImageApp result;
  const common::Vfs root = image.flatten();
  const auto script_text = root.read("app/xbuild.txt");
  if (!script_text) {
    result.error = "image has no app/xbuild.txt build script";
    return result;
  }
  const auto parsed = buildsys::parse_script(*script_text);
  if (!parsed.ok) {
    result.error = "build script parse failed: " + parsed.error;
    return result;
  }
  result.app.script = parsed.script;
  result.app.name = parsed.script.project;
  result.app.build_script_text = *script_text;
  for (const auto& [path, contents] : root) {
    if (common::starts_with(path, "app/") && path != "app/xbuild.txt") {
      result.app.source_tree.write(path.substr(4), contents);
    }
  }
  result.ok = true;
  return result;
}

}  // namespace xaas
