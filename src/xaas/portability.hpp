// The portability-layer taxonomy of Table 2: levels of code portability
// classified by how much of the build runs on the target system.
#pragma once

#include <string>
#include <vector>

namespace xaas {

enum class PortabilityLevel { Building, Linking, Lowering, Emulation };

std::string_view to_string(PortabilityLevel level);

struct PortabilityTechnology {
  PortabilityLevel level;
  std::string technology;   // e.g. "Spack, EasyBuild"
  std::string description;
  std::string approach;     // "Portability Approach" column
  std::string integration;  // "Dependency Integration" column
};

/// Table 2 rows.
const std::vector<PortabilityTechnology>& portability_table();

/// Where XaaS containers sit: source containers at the Building level
/// executed at deployment, IR containers at the Lowering level with full
/// dependency integration.
std::string xaas_positioning();

}  // namespace xaas
