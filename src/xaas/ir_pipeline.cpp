#include "xaas/ir_pipeline.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

#include "common/json.hpp"
#include "common/sha256.hpp"
#include "common/strings.hpp"
#include "common/thread_pool.hpp"
#include "minicc/ast.hpp"
#include "minicc/compile_cache.hpp"
#include "minicc/driver.hpp"
#include "minicc/irgen.hpp"
#include "minicc/parser.hpp"
#include "minicc/passes.hpp"
#include "minicc/vectorizer.hpp"

namespace xaas {

using common::Json;

namespace {
struct StageTimer {
  using C = std::chrono::steady_clock;
  C::time_point last = C::now();
  bool on = std::getenv("XAAS_PIPELINE_TRACE") != nullptr;
  void lap(const char* name) {
    if (!on) return;
    auto now = C::now();
    std::fprintf(stderr, "[stage] %-22s %8.3f ms\n", name,
                 std::chrono::duration<double, std::milli>(now - last).count());
    last = now;
  }
};

// Dependency environment for container builds: the pipeline assembles
// dependency layers itself, so every dependency the script can request is
// available at its minimum version (§4.3: "The container is assembled
// from layers that provide the toolchain and dependencies").
buildsys::Environment container_build_env(const buildsys::BuildScript& script,
                                          const std::string& build_dir) {
  buildsys::Environment env;
  env.build_dir = build_dir;
  for (const auto& d : script.directives) {
    if (d.kind != buildsys::Directive::Kind::RequireDependency) continue;
    const std::string version = d.args.size() > 1 ? d.args[1] : "1.0";
    env.dependencies[d.args.at(0)] = version;
  }
  return env;
}

std::string sanitize(const std::string& path) {
  std::string out = common::replace_all(path, "/", "_");
  return common::replace_all(out, ".", "_");
}

struct TuInstance {
  std::size_t config_index;
  std::size_t flag_info;            // per-(config, target) key data index
  std::string source;
  minicc::CompileFlags flags;       // as produced by the configuration
  std::size_t pp_unit = 0;          // distinct preprocess input (memo slot)
  bool openmp_relevant = false;     // source's closure references _OPENMP
  std::string pp_hash;              // preprocessed-content hash
  bool openmp_effective = false;
  std::string dedup_key;
};

// ---- Preprocessing memoization ------------------------------------------
//
// The N-configs x M-TUs loop hands the preprocessor near-identical inputs
// over and over: most configuration-specific defines are never referenced
// by most translation units. The macro-relevance machinery (include-
// closure scans, effective-define canonicalization, preprocess keys) is
// shared with the build farm's per-TU compile cache and lives in
// minicc/compile_cache.{hpp,cpp}. Instances agreeing on
// (source, relevant defines, include dirs) share one preprocess run.

/// One distinct preprocess input and its cached result.
struct PpUnit {
  std::string source;
  minicc::CompileFlags flags;  // flags of the first instance with this key
  bool ok = false;
  std::string error;
  std::string output;
  std::string hash;
};

/// Parse result cached by preprocessed-content hash: OpenMP detection and
/// IR generation for identical inputs share one AST.
struct ParsedUnit {
  minicc::ParseResult parsed;
  bool openmp_constructs = false;
};

}  // namespace

IrContainerBuild build_ir_container(const Application& app, isa::Arch arch,
                                    const IrBuildOptions& options) {
  IrContainerBuild result;
  DedupStats& stats = result.stats;
  StageTimer timer_;

  // ---- Generation: one configuration per point combination ------------
  const auto assignments =
      buildsys::expand_configurations(app.script, options.points);
  stats.configurations = static_cast<int>(assignments.size());

  std::vector<buildsys::Configuration> configs;
  configs.reserve(assignments.size());
  for (std::size_t i = 0; i < assignments.size(); ++i) {
    const std::string norm_dir =
        options.containerized_builds ? "/xaas/build"
                                     : "/build/cfg" + std::to_string(i);
    buildsys::Configuration c = buildsys::configure(
        app.script, assignments[i],
        container_build_env(app.script, norm_dir));
    if (!c.ok) {
      result.error = "configuration '" +
                     (c.option_values.empty() ? std::to_string(i) : c.id()) +
                     "' failed: " + c.error;
      return result;
    }
    configs.push_back(std::move(c));
    result.configuration_ids.push_back(configs.back().id());
  }

  timer_.lap("configure");
  // The compile-command database is computed once per configuration and
  // reused for instance collection and manifest assembly below.
  std::vector<std::vector<buildsys::CompileCommand>> commands_per_config;
  commands_per_config.reserve(configs.size());
  for (const auto& config : configs) {
    commands_per_config.push_back(config.compile_commands(app.source_tree));
  }

  timer_.lap("compile_commands");
  // Defines derived from the SIMD option belong to the CPU-tuning bucket
  // (like the -m flags), not the raw-incompatibility diagnostic.
  std::vector<std::string> simd_define_prefixes;
  for (const auto& opt : app.script.options) {
    if (opt.is_simd) simd_define_prefixes.push_back("-D" + opt.name + "_");
  }

  // ---- Collect TU instances -------------------------------------------
  //
  // The §6.4 "incompatible raw flags" diagnostic wants the flags a
  // *non*-containerized build would produce (divergent /build/cfg<i>
  // directories). The build dir reaches compile commands in exactly one
  // place — include_build_dir emits "-I<build_dir>/include" — so the
  // divergent variant is derived textually from the containerized
  // expansion instead of running a second `configure` per configuration.
  std::vector<TuInstance> instances;
  std::unordered_map<std::string, std::unordered_set<std::string>>
      raw_flags_per_tu;  // (target \x1f source) -> raw flag strings
  const std::string norm_build_inc = "-I/xaas/build/include";
  std::vector<minicc::CompileFlags> target_flags;
  std::vector<minicc::TargetFlagInfo> flag_infos;  // parallel to target_flags

  for (std::size_t i = 0; i < configs.size(); ++i) {
    const auto& commands = commands_per_config[i];
    // Raw-diagnostic strings and parsed flags are per (config, target):
    // every source in a target shares its argument list.
    std::unordered_map<std::string, std::string> raw_by_target;
    std::unordered_map<std::string, std::size_t> flags_by_target;
    const std::string divergent_inc =
        "-I/build/cfg" + std::to_string(i) + "/include";
    for (const auto& cmd : commands) {
      ++stats.total_tus;
      auto raw_it = raw_by_target.find(cmd.target);
      if (raw_it == raw_by_target.end()) {
        std::string raw_no_tuning;
        for (const auto& arg : cmd.args) {
          // CPU tuning flags are tracked in their own §6.4 bucket; the
          // raw incompatibility diagnostic isolates everything else
          // (build-dir include paths being the dominant cause).
          if (common::starts_with(arg, "-m")) continue;
          bool simd_define = false;
          for (const auto& prefix : simd_define_prefixes) {
            if (common::starts_with(arg, prefix)) simd_define = true;
          }
          if (simd_define) continue;
          if (options.containerized_builds && arg == norm_build_inc) {
            raw_no_tuning += divergent_inc;
          } else {
            raw_no_tuning += arg;
          }
          raw_no_tuning += ' ';
        }
        raw_it = raw_by_target.emplace(cmd.target, std::move(raw_no_tuning))
                     .first;
        flags_by_target.emplace(cmd.target, target_flags.size());
        target_flags.push_back(minicc::CompileFlags::parse_args(cmd.args));
        flag_infos.push_back(minicc::make_flag_info(target_flags.back()));
      }
      raw_flags_per_tu[cmd.target + '\x1f' + cmd.source].insert(
          raw_it->second);
      if (app.is_system_dependent(cmd.source)) {
        ++stats.system_dependent;
        continue;
      }
      TuInstance inst;
      inst.config_index = i;
      inst.flag_info = flags_by_target.at(cmd.target);
      inst.source = cmd.source;
      inst.flags = target_flags[inst.flag_info];
      instances.push_back(std::move(inst));
    }
  }

  timer_.lap("collect_instances");
  // §6.4 diagnostic: fraction of TUs with incompatible raw flags across
  // configurations (driven by build-dir header paths).
  {
    int incompatible = 0;
    int multi = 0;
    for (const auto& [key, flag_set] : raw_flags_per_tu) {
      (void)key;
      ++multi;
      if (flag_set.size() > 1) ++incompatible;
    }
    stats.flag_incompatible_pct =
        multi > 0 ? 100.0 * incompatible / multi : 0.0;
  }

  timer_.lap("diag");
  // ---- Preprocessing + OpenMP detection (memoized, parallel) -----------
  // Macro-relevance scans, one per (source, include dirs).
  std::unordered_map<std::string, minicc::SourceScan> scans;
  std::vector<PpUnit> units;
  std::unordered_map<std::string, std::size_t> unit_index;
  for (auto& inst : instances) {
    const minicc::TargetFlagInfo& info = flag_infos[inst.flag_info];
    std::string scan_key = inst.source + info.dirs_suffix;
    auto scan_it = scans.find(scan_key);
    if (scan_it == scans.end()) {
      scan_it = scans.emplace(std::move(scan_key),
                              minicc::build_scan(app.source_tree, inst.source,
                                                 inst.flags.include_dirs))
                    .first;
    }
    const minicc::SourceScan& scan = scan_it->second;
    inst.openmp_relevant = flag_infos[inst.flag_info].relevant(scan, "_OPENMP");
    const std::string key = minicc::preprocess_key(inst.source, info, scan);
    const auto [it, inserted] = unit_index.emplace(key, units.size());
    if (inserted) {
      PpUnit unit;
      unit.source = inst.source;
      unit.flags = inst.flags;
      units.push_back(std::move(unit));
    }
    inst.pp_unit = it->second;
  }

  timer_.lap("scans_keys");
  common::ThreadPool pool(options.threads);
  pool.parallel_for(units.size(), [&](std::size_t idx) {
    PpUnit& unit = units[idx];
    const auto pp =
        minicc::preprocess_file(app.source_tree, unit.source, unit.flags);
    if (!pp.ok) {
      unit.error = pp.error;
      return;
    }
    unit.ok = true;
    unit.output = pp.output;
    unit.hash = common::sha256_hex(pp.output);
  });
  timer_.lap("preprocess");
  for (const auto& unit : units) {
    if (!unit.ok) {
      result.error = "preprocessing failed: " + unit.source + ": " +
                     unit.error;
      return result;
    }
  }

  timer_.lap("pp_errcheck");
  // Parse each distinct preprocessed content once; OpenMP detection and
  // the IR builds below share the AST.
  std::unordered_map<std::string, ParsedUnit> parsed_by_hash;
  {
    std::vector<ParsedUnit*> to_parse;
    std::vector<const PpUnit*> to_parse_unit;
    for (const auto& inst : instances) {
      const PpUnit& unit = units[inst.pp_unit];
      if (!(inst.flags.openmp && options.detect_openmp)) continue;
      const auto [it, inserted] = parsed_by_hash.try_emplace(unit.hash);
      if (inserted) {
        to_parse.push_back(&it->second);
        to_parse_unit.push_back(&unit);
      }
    }
    pool.parallel_for(to_parse.size(), [&](std::size_t idx) {
      ParsedUnit& p = *to_parse[idx];
      p.parsed = minicc::parse(to_parse_unit[idx]->output);
      p.openmp_constructs =
          p.parsed.ok && minicc::ast::uses_openmp(p.parsed.tu);
    });
  }

  timer_.lap("detect_parse");
  for (auto& inst : instances) {
    const PpUnit& unit = units[inst.pp_unit];
    inst.pp_hash = unit.hash;
    inst.openmp_effective = inst.flags.openmp;
    if (inst.flags.openmp && options.detect_openmp) {
      inst.openmp_effective = parsed_by_hash.at(unit.hash).openmp_constructs;
    }
  }

  timer_.lap("assign_effective");
  // ---- Dedup keys -------------------------------------------------------
  for (auto& inst : instances) {
    minicc::CompileFlags key_flags = inst.flags;
    if (options.delay_vectorization) key_flags.march.reset();
    key_flags.openmp = inst.openmp_effective;
    if (options.dedup_preprocessing) {
      // Semantic key: what the compiler actually sees.
      inst.dedup_key = inst.source + "|" + inst.pp_hash + "|" +
                       (inst.openmp_effective ? "omp" : "noomp") + "|O" +
                       std::to_string(key_flags.opt_level);
      if (!options.delay_vectorization) {
        inst.dedup_key +=
            "|" + (inst.flags.march
                       ? std::string(isa::to_string(*inst.flags.march))
                       : "generic");
      }
    } else {
      // Purely syntactic comparison of normalized flags.
      inst.dedup_key = inst.source + "|" + key_flags.canonical();
    }
    if (inst.flags.openmp && !inst.openmp_effective) ++stats.openmp_merged;
  }

  // preproc_distinct: among surplus TU instances (beyond one per source),
  // how many still need their own IR after hashing.
  {
    std::unordered_set<std::string> sources;
    std::unordered_set<std::string> source_hash;
    for (const auto& inst : instances) {
      sources.insert(inst.source);
      source_hash.insert(inst.source + '\x1f' + inst.pp_hash);
    }
    const long long surplus_total =
        static_cast<long long>(instances.size()) -
        static_cast<long long>(sources.size());
    const long long surplus_unique =
        static_cast<long long>(source_hash.size()) -
        static_cast<long long>(sources.size());
    stats.preproc_distinct_pct =
        surplus_total > 0 ? 100.0 * static_cast<double>(surplus_unique) /
                                static_cast<double>(surplus_total)
                          : 0.0;
  }

  // tuning_only: among groups of semantically identical TUs, how many
  // carried different CPU tuning flags (resolved by delaying
  // vectorization).
  {
    std::unordered_map<std::string,
                       std::pair<std::unordered_set<std::string>, int>>
        march_per_group;
    for (const auto& inst : instances) {
      const std::string semantic_key =
          inst.source + "|" + inst.pp_hash + "|" +
          (inst.openmp_effective ? "omp" : "noomp");
      auto& [marches, count] = march_per_group[semantic_key];
      marches.insert(inst.flags.march
                         ? std::string(isa::to_string(*inst.flags.march))
                         : "generic");
      ++count;
    }
    // Among groups of semantically identical TU instances, how many carry
    // divergent CPU tuning (the paper's "95% of identical targets have
    // different CPU tuning").
    int multi = 0;
    int tuned = 0;
    for (const auto& [key, group] : march_per_group) {
      (void)key;
      if (group.second < 2) continue;
      ++multi;
      if (group.first.size() > 1) ++tuned;
    }
    stats.tuning_only_pct = multi > 0 ? 100.0 * tuned / multi : 0.0;
  }

  timer_.lap("dedup_stats");
  // ---- Build unique IRs (parallel) --------------------------------------
  std::unordered_map<std::string, std::size_t> key_to_artifact;
  std::vector<TuInstance*> representatives;
  for (auto& inst : instances) {
    const auto [it, inserted] =
        key_to_artifact.emplace(inst.dedup_key, representatives.size());
    if (inserted) {
      representatives.push_back(&inst);
      IrArtifact artifact;
      artifact.source = inst.source;
      artifact.openmp = inst.openmp_effective;
      artifact.path = "ir/" + sanitize(inst.source) + "_" +
                      inst.pp_hash.substr(0, 10) +
                      (inst.openmp_effective ? "_omp" : "") +
                      (!options.delay_vectorization && inst.flags.march
                           ? "_" + std::string(isa::to_string(*inst.flags.march))
                           : "") +
                      ".xir";
      minicc::CompileFlags f = inst.flags;
      if (options.delay_vectorization) f.march.reset();
      f.openmp = inst.openmp_effective;
      artifact.flags = f.canonical();
      result.artifacts.push_back(std::move(artifact));
    }
    result.artifacts[it->second].used_by.push_back(
        result.configuration_ids[inst.config_index]);
  }
  stats.unique_irs = static_cast<int>(result.artifacts.size());
  stats.reduction_pct =
      stats.total_tus > 0
          ? 100.0 * (1.0 - static_cast<double>(stats.unique_irs +
                                               stats.system_dependent) /
                               static_cast<double>(stats.total_tus))
          : 0.0;

  timer_.lap("artifact_list");
  // Compile the surviving representatives, reusing the memoized
  // preprocessed text and cached ASTs instead of re-running the front
  // end per artifact (the seed re-preprocessed and re-parsed every one).
  std::vector<std::string> ir_texts(representatives.size());
  std::string compile_error;
  std::mutex error_mutex;
  pool.parallel_for(representatives.size(), [&](std::size_t idx) {
    const TuInstance& inst = *representatives[idx];
    minicc::CompileFlags flags = inst.flags;
    flags.openmp = inst.openmp_effective;
    if (options.delay_vectorization) flags.march.reset();

    const auto fail = [&](const std::string& phase, const std::string& msg) {
      std::lock_guard lock(error_mutex);
      if (compile_error.empty()) {
        compile_error = inst.source + " (" + phase + "): " + msg;
      }
    };

    // Locate the preprocessed text for the *effective* flags. Dropping
    // -fopenmp only changes preprocessing when the TU's include closure
    // references _OPENMP; everything else reuses the memoized unit.
    const std::string* pp_text = nullptr;
    const std::string* pp_hash = nullptr;
    minicc::PreprocessResult local_pp;
    std::string local_hash;
    if (flags.openmp == inst.flags.openmp || !inst.openmp_relevant) {
      pp_text = &units[inst.pp_unit].output;
      pp_hash = &units[inst.pp_unit].hash;
    } else {
      local_pp = minicc::preprocess_file(app.source_tree, inst.source, flags);
      if (!local_pp.ok) {
        fail("preprocess", local_pp.error);
        return;
      }
      local_hash = common::sha256_hex(local_pp.output);
      pp_text = &local_pp.output;
      pp_hash = &local_hash;
    }

    // Parse: shared AST when OpenMP detection already parsed this text.
    const ParsedUnit* cached = nullptr;
    if (const auto it = parsed_by_hash.find(*pp_hash);
        it != parsed_by_hash.end() && it->second.parsed.ok) {
      cached = &it->second;
    }
    minicc::ParseResult local_parse;
    const minicc::ParseResult* parsed = nullptr;
    if (cached) {
      parsed = &cached->parsed;
    } else {
      local_parse = minicc::parse(*pp_text);
      parsed = &local_parse;
    }
    if (!parsed->ok) {
      fail("parse", parsed->error + " [" + inst.source + "]");
      return;
    }

    minicc::IrGenOptions gen_options;
    gen_options.openmp = flags.openmp;
    gen_options.source_path = inst.source;
    minicc::IrGenResult gen = minicc::generate_ir(parsed->tu, gen_options);
    if (!gen.ok) {
      fail("irgen", gen.error);
      return;
    }
    // Target-independent cleanup only; vectorization and FMA fusion wait
    // for deployment.
    minicc::optimize(gen.module, std::min(flags.opt_level, 1));

    if (!options.delay_vectorization && inst.flags.march) {
      // Ablation mode: premature target-specific optimization at
      // container-build time. The IR is vectorized now and cannot be
      // efficiently re-vectorized at deployment (§4.3).
      minicc::vectorize_module(gen.module,
                               isa::lanes_f64(*inst.flags.march));
    }
    ir_texts[idx] = minicc::ir::print(gen.module);
  });
  timer_.lap("compile");
  if (!compile_error.empty()) {
    result.error = "IR compilation failed: " + compile_error;
    return result;
  }

  timer_.lap("compile_err");
  // ---- Assemble the image ------------------------------------------------
  common::Vfs toolchain;
  toolchain.write("opt/toolchain/minicc.json",
                  "{\"compiler\": \"minicc\", \"exports_ir\": true}");

  common::Vfs ir_layer;
  for (std::size_t i = 0; i < result.artifacts.size(); ++i) {
    ir_layer.write(result.artifacts[i].path, ir_texts[i]);
  }

  common::Vfs source_layer;
  for (const auto& [path, contents] : app.source_tree) {
    source_layer.write("app/" + path, contents);
  }
  source_layer.write("app/xbuild.txt", app.build_script_text);

  // Manifest: per configuration, the IR (or source) each TU resolves to,
  // plus the per-config link/lowering parameters.
  std::unordered_map<std::string, std::size_t> instance_lookup;
  for (const auto& inst : instances) {
    instance_lookup[std::to_string(inst.config_index) + '\x1f' + inst.source] =
        key_to_artifact[inst.dedup_key];
  }
  Json manifest = Json::object();
  manifest["application"] = app.name;
  manifest["entry_point"] = app.entry_point;
  Json config_list = Json::array();
  for (std::size_t i = 0; i < configs.size(); ++i) {
    Json c = Json::object();
    c["id"] = result.configuration_ids[i];
    Json values = Json::object();
    for (const auto& [name, value] : configs[i].option_values) {
      values[name] = value;
    }
    c["options"] = std::move(values);
    bool openmp = false;
    for (const auto& flag : configs[i].global_flags) {
      if (flag == "-fopenmp") openmp = true;
    }
    c["openmp"] = openmp;
    // Record the configuration's SIMD choice by *option value* so that
    // "None" deploys scalar instead of silently upgrading to the node's
    // best ISA.
    std::string march;
    for (const auto& opt : app.script.options) {
      if (!opt.is_simd) continue;
      const auto it = configs[i].option_values.find(opt.name);
      if (it != configs[i].option_values.end()) march = it->second;
    }
    c["march"] = march;

    Json units_json = Json::array();
    for (const auto& cmd : commands_per_config[i]) {
      Json unit = Json::object();
      unit["source"] = cmd.source;
      if (app.is_system_dependent(cmd.source)) {
        unit["system_dependent"] = true;
        unit["flags"] = cmd.args_string();
      } else {
        const auto it = instance_lookup.find(std::to_string(i) + '\x1f' +
                                             cmd.source);
        if (it != instance_lookup.end()) {
          unit["ir"] = result.artifacts[it->second].path;
        }
      }
      units_json.push_back(std::move(unit));
    }
    c["translation_units"] = std::move(units_json);
    config_list.push_back(std::move(c));
  }
  manifest["configurations"] = std::move(config_list);

  common::Vfs manifest_layer;
  manifest_layer.write("xaas/manifest.json", manifest.dump(2));

  result.image =
      container::ImageBuilder()
          .architecture(arch == isa::Arch::X86_64 ? container::kArchLlvmIrAmd64
                                                  : container::kArchLlvmIrArm64)
          .add_layer(std::move(toolchain))
          .add_layer(std::move(ir_layer))
          .add_layer(std::move(source_layer))
          .add_layer(std::move(manifest_layer))
          .annotation(container::kAnnotationKind, "ir")
          .annotation(container::kAnnotationSpecPoints,
                      app.ground_truth().to_json().dump())
          .build();
  timer_.lap("assemble_image");
  result.ok = true;
  return result;
}

}  // namespace xaas
