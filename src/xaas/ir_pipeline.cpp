#include "xaas/ir_pipeline.hpp"

#include <algorithm>
#include <mutex>
#include <set>

#include "common/json.hpp"
#include "common/sha256.hpp"
#include "common/strings.hpp"
#include "common/thread_pool.hpp"
#include "minicc/driver.hpp"
#include "minicc/vectorizer.hpp"

namespace xaas {

using common::Json;

namespace {

// Dependency environment for container builds: the pipeline assembles
// dependency layers itself, so every dependency the script can request is
// available at its minimum version (§4.3: "The container is assembled
// from layers that provide the toolchain and dependencies").
buildsys::Environment container_build_env(const buildsys::BuildScript& script,
                                          const std::string& build_dir) {
  buildsys::Environment env;
  env.build_dir = build_dir;
  for (const auto& d : script.directives) {
    if (d.kind != buildsys::Directive::Kind::RequireDependency) continue;
    const std::string version = d.args.size() > 1 ? d.args[1] : "1.0";
    env.dependencies[d.args.at(0)] = version;
  }
  return env;
}

std::string sanitize(const std::string& path) {
  std::string out = common::replace_all(path, "/", "_");
  return common::replace_all(out, ".", "_");
}

struct TuInstance {
  std::size_t config_index;
  std::string config_id;
  std::string source;
  minicc::CompileFlags flags;       // as produced by the configuration
  std::string raw_args;             // pre-normalization textual flags
  std::string pp_hash;              // preprocessed-content hash
  bool openmp_effective = false;
  std::string dedup_key;
};

}  // namespace

IrContainerBuild build_ir_container(const Application& app, isa::Arch arch,
                                    const IrBuildOptions& options) {
  IrContainerBuild result;
  DedupStats& stats = result.stats;

  // ---- Generation: one configuration per point combination ------------
  const auto assignments =
      buildsys::expand_configurations(app.script, options.points);
  stats.configurations = static_cast<int>(assignments.size());

  std::vector<buildsys::Configuration> configs;
  std::vector<buildsys::Configuration> configs_divergent;  // metric only
  for (std::size_t i = 0; i < assignments.size(); ++i) {
    const std::string norm_dir =
        options.containerized_builds ? "/xaas/build"
                                     : "/build/cfg" + std::to_string(i);
    buildsys::Configuration c = buildsys::configure(
        app.script, assignments[i],
        container_build_env(app.script, norm_dir));
    if (!c.ok) {
      result.error = "configuration '" +
                     (c.option_values.empty() ? std::to_string(i) : c.id()) +
                     "' failed: " + c.error;
      return result;
    }
    configs.push_back(std::move(c));
    // What flags would look like without the containerized mount — used
    // for the §6.4 "incompatible flags" diagnostic.
    configs_divergent.push_back(buildsys::configure(
        app.script, assignments[i],
        container_build_env(app.script, "/build/cfg" + std::to_string(i))));
    result.configuration_ids.push_back(configs.back().id());
  }

  // Defines derived from the SIMD option belong to the CPU-tuning bucket
  // (like the -m flags), not the raw-incompatibility diagnostic.
  std::vector<std::string> simd_define_prefixes;
  for (const auto& opt : app.script.options) {
    if (opt.is_simd) simd_define_prefixes.push_back("-D" + opt.name + "_");
  }

  // ---- Collect TU instances -------------------------------------------
  std::vector<TuInstance> instances;
  std::map<std::pair<std::string, std::string>, std::set<std::string>>
      raw_flags_per_tu;  // (target, source) -> raw flag strings (divergent dirs)
  std::set<std::string> sd_sources;

  for (std::size_t i = 0; i < configs.size(); ++i) {
    const auto commands = configs[i].compile_commands(app.source_tree);
    const auto raw_commands =
        configs_divergent[i].compile_commands(app.source_tree);
    for (std::size_t k = 0; k < commands.size(); ++k) {
      const auto& cmd = commands[k];
      ++stats.total_tus;
      // CPU tuning flags are tracked in their own §6.4 bucket; the raw
      // incompatibility diagnostic isolates everything else (build-dir
      // include paths being the dominant cause).
      const auto& raw_cmd = k < raw_commands.size() ? raw_commands[k] : cmd;
      std::string raw_no_tuning;
      for (const auto& arg : raw_cmd.args) {
        if (common::starts_with(arg, "-m")) continue;
        bool simd_define = false;
        for (const auto& prefix : simd_define_prefixes) {
          if (common::starts_with(arg, prefix)) simd_define = true;
        }
        if (simd_define) continue;
        raw_no_tuning += arg;
        raw_no_tuning += ' ';
      }
      raw_flags_per_tu[{cmd.target, cmd.source}].insert(raw_no_tuning);
      if (app.is_system_dependent(cmd.source)) {
        ++stats.system_dependent;
        sd_sources.insert(cmd.source);
        continue;
      }
      TuInstance inst;
      inst.config_index = i;
      inst.config_id = configs[i].id();
      inst.source = cmd.source;
      inst.raw_args = cmd.args_string();
      inst.flags = minicc::CompileFlags::parse_args(cmd.args);
      instances.push_back(std::move(inst));
    }
  }

  // §6.4 diagnostic: fraction of TUs with incompatible raw flags across
  // configurations (driven by build-dir header paths).
  {
    int incompatible = 0;
    int multi = 0;
    for (const auto& [key, flag_set] : raw_flags_per_tu) {
      (void)key;
      ++multi;
      if (flag_set.size() > 1) ++incompatible;
    }
    stats.flag_incompatible_pct =
        multi > 0 ? 100.0 * incompatible / multi : 0.0;
  }

  // ---- Preprocessing + OpenMP detection (parallel) ---------------------
  common::ThreadPool pool(options.threads);
  std::string pp_error;
  std::mutex error_mutex;
  pool.parallel_for(instances.size(), [&](std::size_t idx) {
    TuInstance& inst = instances[idx];
    minicc::CompileFlags pp_flags = inst.flags;
    const auto pp =
        minicc::preprocess_file(app.source_tree, inst.source, pp_flags);
    if (!pp.ok) {
      std::lock_guard lock(error_mutex);
      if (pp_error.empty()) {
        pp_error = inst.source + ": " + pp.error;
      }
      return;
    }
    inst.pp_hash = common::sha256_hex(pp.output);
    inst.openmp_effective = inst.flags.openmp;
    if (inst.flags.openmp && options.detect_openmp) {
      inst.openmp_effective = minicc::detect_openmp_constructs(pp.output);
    }
  });
  if (!pp_error.empty()) {
    result.error = "preprocessing failed: " + pp_error;
    return result;
  }

  // ---- Dedup keys -------------------------------------------------------
  for (auto& inst : instances) {
    minicc::CompileFlags key_flags = inst.flags;
    if (options.delay_vectorization) key_flags.march.reset();
    key_flags.openmp = inst.openmp_effective;
    if (options.dedup_preprocessing) {
      // Semantic key: what the compiler actually sees.
      inst.dedup_key = inst.source + "|" + inst.pp_hash + "|" +
                       (inst.openmp_effective ? "omp" : "noomp") + "|O" +
                       std::to_string(key_flags.opt_level);
      if (!options.delay_vectorization) {
        inst.dedup_key +=
            "|" + (inst.flags.march
                       ? std::string(isa::to_string(*inst.flags.march))
                       : "generic");
      }
    } else {
      // Purely syntactic comparison of normalized flags.
      inst.dedup_key = inst.source + "|" + key_flags.canonical();
    }
    if (inst.flags.openmp && !inst.openmp_effective) ++stats.openmp_merged;
  }

  // preproc_distinct: among surplus TU instances (beyond one per source),
  // how many still need their own IR after hashing.
  {
    std::set<std::string> sources;
    std::set<std::pair<std::string, std::string>> source_hash;
    for (const auto& inst : instances) {
      sources.insert(inst.source);
      source_hash.insert({inst.source, inst.pp_hash});
    }
    const long long surplus_total =
        static_cast<long long>(instances.size()) -
        static_cast<long long>(sources.size());
    const long long surplus_unique =
        static_cast<long long>(source_hash.size()) -
        static_cast<long long>(sources.size());
    stats.preproc_distinct_pct =
        surplus_total > 0 ? 100.0 * static_cast<double>(surplus_unique) /
                                static_cast<double>(surplus_total)
                          : 0.0;
  }

  // tuning_only: among groups of semantically identical TUs, how many
  // carried different CPU tuning flags (resolved by delaying
  // vectorization).
  {
    std::map<std::string, std::pair<std::set<std::string>, int>>
        march_per_group;
    for (const auto& inst : instances) {
      const std::string semantic_key =
          inst.source + "|" + inst.pp_hash + "|" +
          (inst.openmp_effective ? "omp" : "noomp");
      auto& [marches, count] = march_per_group[semantic_key];
      marches.insert(inst.flags.march
                         ? std::string(isa::to_string(*inst.flags.march))
                         : "generic");
      ++count;
    }
    // Among groups of semantically identical TU instances, how many carry
    // divergent CPU tuning (the paper's "95% of identical targets have
    // different CPU tuning").
    int multi = 0;
    int tuned = 0;
    for (const auto& [key, group] : march_per_group) {
      (void)key;
      if (group.second < 2) continue;
      ++multi;
      if (group.first.size() > 1) ++tuned;
    }
    stats.tuning_only_pct = multi > 0 ? 100.0 * tuned / multi : 0.0;
  }

  // ---- Build unique IRs (parallel) --------------------------------------
  std::map<std::string, std::size_t> key_to_artifact;
  std::vector<TuInstance*> representatives;
  for (auto& inst : instances) {
    const auto [it, inserted] =
        key_to_artifact.emplace(inst.dedup_key, representatives.size());
    if (inserted) {
      representatives.push_back(&inst);
      IrArtifact artifact;
      artifact.source = inst.source;
      artifact.openmp = inst.openmp_effective;
      artifact.path = "ir/" + sanitize(inst.source) + "_" +
                      inst.pp_hash.substr(0, 10) +
                      (inst.openmp_effective ? "_omp" : "") +
                      (!options.delay_vectorization && inst.flags.march
                           ? "_" + std::string(isa::to_string(*inst.flags.march))
                           : "") +
                      ".xir";
      minicc::CompileFlags f = inst.flags;
      if (options.delay_vectorization) f.march.reset();
      f.openmp = inst.openmp_effective;
      artifact.flags = f.canonical();
      result.artifacts.push_back(std::move(artifact));
    }
    result.artifacts[it->second].used_by.push_back(inst.config_id);
  }
  stats.unique_irs = static_cast<int>(result.artifacts.size());
  stats.reduction_pct =
      stats.total_tus > 0
          ? 100.0 * (1.0 - static_cast<double>(stats.unique_irs +
                                               stats.system_dependent) /
                               static_cast<double>(stats.total_tus))
          : 0.0;

  std::vector<std::string> ir_texts(representatives.size());
  std::string compile_error;
  pool.parallel_for(representatives.size(), [&](std::size_t idx) {
    const TuInstance& inst = *representatives[idx];
    minicc::CompileFlags flags = inst.flags;
    flags.openmp = inst.openmp_effective;
    if (options.delay_vectorization) flags.march.reset();
    auto compiled = minicc::compile_to_ir(app.source_tree, inst.source, flags);
    if (!compiled.ok) {
      std::lock_guard lock(error_mutex);
      if (compile_error.empty()) {
        compile_error = inst.source + " (" + compiled.error.phase +
                        "): " + compiled.error.message;
      }
      return;
    }
    if (!options.delay_vectorization && inst.flags.march) {
      // Ablation mode: premature target-specific optimization at
      // container-build time. The IR is vectorized now and cannot be
      // efficiently re-vectorized at deployment (§4.3).
      minicc::vectorize_module(compiled.module,
                               isa::lanes_f64(*inst.flags.march));
    }
    ir_texts[idx] = minicc::ir::print(compiled.module);
  });
  if (!compile_error.empty()) {
    result.error = "IR compilation failed: " + compile_error;
    return result;
  }

  // ---- Assemble the image ------------------------------------------------
  common::Vfs toolchain;
  toolchain.write("opt/toolchain/minicc.json",
                  "{\"compiler\": \"minicc\", \"exports_ir\": true}");

  common::Vfs ir_layer;
  for (std::size_t i = 0; i < result.artifacts.size(); ++i) {
    ir_layer.write(result.artifacts[i].path, ir_texts[i]);
  }

  common::Vfs source_layer;
  for (const auto& [path, contents] : app.source_tree) {
    source_layer.write("app/" + path, contents);
  }
  source_layer.write("app/xbuild.txt", app.build_script_text);

  // Manifest: per configuration, the IR (or source) each TU resolves to,
  // plus the per-config link/lowering parameters.
  std::map<std::pair<std::size_t, std::string>, std::size_t> instance_lookup;
  for (const auto& inst : instances) {
    instance_lookup[{inst.config_index, inst.source}] =
        key_to_artifact[inst.dedup_key];
  }
  Json manifest = Json::object();
  manifest["application"] = app.name;
  manifest["entry_point"] = app.entry_point;
  Json config_list = Json::array();
  for (std::size_t i = 0; i < configs.size(); ++i) {
    Json c = Json::object();
    c["id"] = configs[i].id();
    Json values = Json::object();
    for (const auto& [name, value] : configs[i].option_values) {
      values[name] = value;
    }
    c["options"] = std::move(values);
    bool openmp = false;
    for (const auto& flag : configs[i].global_flags) {
      if (flag == "-fopenmp") openmp = true;
    }
    c["openmp"] = openmp;
    // Record the configuration's SIMD choice by *option value* so that
    // "None" deploys scalar instead of silently upgrading to the node's
    // best ISA.
    std::string march;
    for (const auto& opt : app.script.options) {
      if (!opt.is_simd) continue;
      const auto it = configs[i].option_values.find(opt.name);
      if (it != configs[i].option_values.end()) march = it->second;
    }
    c["march"] = march;

    Json units = Json::array();
    const auto commands = configs[i].compile_commands(app.source_tree);
    for (const auto& cmd : commands) {
      Json unit = Json::object();
      unit["source"] = cmd.source;
      if (app.is_system_dependent(cmd.source)) {
        unit["system_dependent"] = true;
        unit["flags"] = cmd.args_string();
      } else {
        const auto it = instance_lookup.find({i, cmd.source});
        if (it != instance_lookup.end()) {
          unit["ir"] = result.artifacts[it->second].path;
        }
      }
      units.push_back(std::move(unit));
    }
    c["translation_units"] = std::move(units);
    config_list.push_back(std::move(c));
  }
  manifest["configurations"] = std::move(config_list);

  common::Vfs manifest_layer;
  manifest_layer.write("xaas/manifest.json", manifest.dump(2));

  result.image =
      container::ImageBuilder()
          .architecture(arch == isa::Arch::X86_64 ? container::kArchLlvmIrAmd64
                                                  : container::kArchLlvmIrArm64)
          .add_layer(std::move(toolchain))
          .add_layer(std::move(ir_layer))
          .add_layer(std::move(source_layer))
          .add_layer(std::move(manifest_layer))
          .annotation(container::kAnnotationKind, "ir")
          .annotation(container::kAnnotationSpecPoints,
                      app.ground_truth().to_json().dump())
          .build();
  result.ok = true;
  return result;
}

}  // namespace xaas
