// IR container deployment (Fig. 8): the user selects one configuration;
// its IR files are optimized, vectorized, and lowered to the node's
// architecture; system-dependent sources are compiled on the spot; the
// build system finishes linking; a new, system-specific image results.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "container/image.hpp"
#include "vm/node.hpp"
#include "xaas/source_container.hpp"

namespace xaas {

struct IrDeployOptions {
  /// Option values identifying the configuration to deploy (must match
  /// exactly one configuration baked into the image).
  std::map<std::string, std::string> selections;
  /// Vector ISA to lower for; defaults to the configuration's recorded
  /// tuning, else the node's best supported level.
  std::optional<isa::VectorIsa> march;
  int opt_level = 2;
};

/// Deploy an IR container on a node. Reads everything (manifest, IR
/// files, sources, build script) from the image itself — deployment does
/// not require the original application object.
DeployedApp deploy_ir_container(const container::Image& ir_image,
                                const vm::NodeSpec& node,
                                const IrDeployOptions& options);

/// Configuration ids stored in an IR image (for tooling and tests).
std::vector<std::string> ir_image_configurations(
    const container::Image& ir_image);

}  // namespace xaas
