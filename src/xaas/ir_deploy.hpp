// IR container deployment (Fig. 8): the user selects one configuration;
// its IR files are optimized, vectorized, and lowered to the node's
// architecture; system-dependent sources are compiled on the spot; the
// build system finishes linking; a new, system-specific image results.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "container/image.hpp"
#include "minicc/lower.hpp"
#include "vm/node.hpp"
#include "xaas/source_container.hpp"

namespace xaas {

struct IrDeployOptions {
  /// Option values identifying the configuration to deploy (must match
  /// exactly one configuration baked into the image).
  std::map<std::string, std::string> selections;
  /// Vector ISA to lower for; defaults to the configuration's recorded
  /// tuning, else the node's best supported level. An explicit march the
  /// node cannot execute is a deployment error; a *recorded* tuning the
  /// node cannot execute is clamped to the node's best supported level.
  std::optional<isa::VectorIsa> march;
  int opt_level = 2;
};

/// Everything a deployment of (image, selections, node) is determined by,
/// resolved without lowering anything. Two requests with equal plans on
/// the same IR image digest produce bit-identical deployed images and
/// programs — this is the specialization-cache key contract used by
/// service::DeployScheduler.
struct IrDeployPlan {
  bool ok = false;
  std::string error;

  std::string configuration;  // selected configuration id
  minicc::TargetSpec target;  // resolved, clamped to the node's ISA ladder
  std::vector<std::string> log;
};

/// Resolve the configuration selection and lowering target for a node
/// (the cheap half of deploy_ir_container: manifest read + selection +
/// ISA clamp, no lowering, no compilation).
IrDeployPlan plan_ir_deploy(const container::Image& ir_image,
                            const vm::NodeSpec& node,
                            const IrDeployOptions& options);

/// Parsed-once deployment metadata of an IR image. Flattening the image
/// and parsing xaas/manifest.json is the dominant cost of planning, and
/// both are immutable per digest — a serving layer parses once and plans
/// many times (service::DeployScheduler keeps one per digest).
struct IrImageManifest {
  bool ok = false;
  std::string error;

  std::string architecture;  // image architecture string
  common::Json manifest;
};

IrImageManifest read_ir_image_manifest(const container::Image& ir_image);

/// Plan against a pre-parsed manifest (no flatten, no JSON parse).
IrDeployPlan plan_ir_deploy(const IrImageManifest& manifest,
                            const vm::NodeSpec& node,
                            const IrDeployOptions& options);

/// Deploy an IR container on a node. Reads everything (manifest, IR
/// files, sources, build script) from the image itself — deployment does
/// not require the original application object.
DeployedApp deploy_ir_container(const container::Image& ir_image,
                                const vm::NodeSpec& node,
                                const IrDeployOptions& options);

/// Configuration ids stored in an IR image (for tooling and tests).
/// A malformed or missing manifest yields an empty list and, when
/// `error` is non-null, a description of what was wrong with it.
std::vector<std::string> ir_image_configurations(
    const container::Image& ir_image, std::string* error = nullptr);

}  // namespace xaas
