// An HPC application as XaaS sees it: a source tree in the Kernel-C
// language, an xbuild script declaring its specialization points, and
// metadata the pipeline needs (system-dependent file globs, §4.2).
#pragma once

#include <string>
#include <vector>

#include "buildsys/script.hpp"
#include "common/vfs.hpp"
#include "spec/spec.hpp"

namespace xaas {

struct Application {
  std::string name;
  common::Vfs source_tree;          // sources + headers, VFS paths
  std::string build_script_text;    // the shipped xbuild script
  buildsys::BuildScript script;     // parsed form

  /// Globs of source files that cannot be compiled to portable IR
  /// (Definition 2: e.g. MPI-ABI-dependent communication files). They
  /// ship as source inside the IR container and compile at deployment.
  std::vector<std::string> system_dependent_globs;

  /// Entry function of the built application (for the VM).
  std::string entry_point = "app_main";

  spec::SpecializationPoints ground_truth() const {
    return spec::extract_ground_truth(script);
  }

  bool is_system_dependent(const std::string& path) const {
    for (const auto& pattern : system_dependent_globs) {
      if (common::glob_match(pattern, path)) return true;
    }
    return false;
  }
};

}  // namespace xaas
