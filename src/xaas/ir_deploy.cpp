#include "xaas/ir_deploy.hpp"

#include "common/json.hpp"
#include "common/strings.hpp"
#include "minicc/driver.hpp"

namespace xaas {

using common::Json;

namespace {

std::optional<Json> read_manifest(const common::Vfs& root,
                                  std::string* error) {
  const auto text = root.read("xaas/manifest.json");
  if (!text) {
    if (error) *error = "image has no xaas/manifest.json";
    return std::nullopt;
  }
  try {
    return Json::parse(*text);
  } catch (const common::JsonError& e) {
    if (error) *error = std::string("manifest parse error: ") + e.what();
    return std::nullopt;
  }
}

bool selection_matches(const Json& config,
                       const std::map<std::string, std::string>& selections) {
  const Json* options = config.find("options");
  if (!options) return selections.empty();
  for (const auto& [name, value] : selections) {
    const Json* v = options->find(name);
    if (!v || !v->is_string() || v->as_string() != value) return false;
  }
  return true;
}

}  // namespace

std::vector<std::string> ir_image_configurations(
    const container::Image& ir_image) {
  std::vector<std::string> ids;
  const common::Vfs root = ir_image.flatten();
  std::string error;
  const auto manifest = read_manifest(root, &error);
  if (!manifest) return ids;
  if (const Json* configs = manifest->find("configurations")) {
    for (const auto& c : configs->items()) {
      ids.push_back(c.get_string("id"));
    }
  }
  return ids;
}

DeployedApp deploy_ir_container(const container::Image& ir_image,
                                const vm::NodeSpec& node,
                                const IrDeployOptions& options) {
  DeployedApp result;
  result.node_name = node.name;

  // Architecture gate: an IR image is per base architecture (§5.1 — the
  // IR is not cross-platform).
  const std::string want = node.cpu.arch == isa::Arch::X86_64
                               ? container::kArchLlvmIrAmd64
                               : container::kArchLlvmIrArm64;
  if (ir_image.architecture != want) {
    result.error = "IR image architecture " + ir_image.architecture +
                   " does not match node (" + want + ")";
    return result;
  }

  const common::Vfs root = ir_image.flatten();
  std::string error;
  const auto manifest = read_manifest(root, &error);
  if (!manifest) {
    result.error = error;
    return result;
  }

  // Select exactly one configuration.
  const Json* configs = manifest->find("configurations");
  if (!configs || configs->items().empty()) {
    result.error = "no configurations in IR image";
    return result;
  }
  std::vector<const Json*> matches;
  for (const auto& c : configs->items()) {
    if (selection_matches(c, options.selections)) matches.push_back(&c);
  }
  if (matches.empty()) {
    result.error = "no configuration matches the selection";
    return result;
  }
  if (matches.size() > 1) {
    result.error = "selection is ambiguous: " +
                   std::to_string(matches.size()) +
                   " configurations match (specify more points)";
    return result;
  }
  const Json& config = *matches.front();
  result.log.push_back("selected configuration " + config.get_string("id"));

  // Lowering target: explicit march > configuration tuning > node best.
  minicc::TargetSpec target;
  target.opt_level = options.opt_level;
  target.openmp = config.get_bool("openmp");
  target.visa = node.best_vector_isa();
  const std::string recorded_march = config.get_string("march");
  if (!recorded_march.empty()) {
    if (const auto visa = isa::vector_isa_from_string(recorded_march)) {
      target.visa = *visa;
    }
  }
  if (options.march) target.visa = *options.march;
  result.target = target;
  result.log.push_back("lowering for " +
                       std::string(isa::to_string(target.visa)));

  // Lower IR files / compile system-dependent sources.
  const Json* units = config.find("translation_units");
  if (!units) {
    result.error = "configuration has no translation units";
    return result;
  }
  std::vector<minicc::MachineModule> modules;
  int lowered = 0;
  int compiled_sd = 0;
  for (const auto& unit : units->items()) {
    const std::string source = unit.get_string("source");
    if (unit.get_bool("system_dependent")) {
      // Compile from source now, against the system's own libraries
      // (Definition 2 files, e.g. MPI-ABI-dependent code).
      const auto flag_args = common::split_ws(unit.get_string("flags"));
      minicc::CompileFlags flags = minicc::CompileFlags::parse_args(flag_args);
      flags.opt_level = options.opt_level;
      common::Vfs app_tree;
      for (const auto& [path, contents] : root) {
        if (common::starts_with(path, "app/")) {
          app_tree.write(path.substr(4), contents);
        }
      }
      const auto compiled =
          minicc::compile_to_target(app_tree, source, flags, target);
      if (!compiled.ok) {
        result.error = "system-dependent compile of " + source + " failed: " +
                       compiled.error.message;
        return result;
      }
      modules.push_back(std::move(compiled.machine));
      ++compiled_sd;
      continue;
    }
    const std::string ir_path = unit.get_string("ir");
    const auto ir_text = root.read(ir_path);
    if (!ir_text) {
      result.error = "IR file missing from image: " + ir_path;
      return result;
    }
    auto parsed = minicc::ir::parse_ir(*ir_text);
    if (!parsed.ok) {
      result.error = "IR parse failed for " + ir_path + ": " + parsed.error;
      return result;
    }
    modules.push_back(minicc::lower(std::move(parsed.module), target));
    ++lowered;
  }
  result.log.push_back("lowered " + std::to_string(lowered) +
                       " IR files, compiled " + std::to_string(compiled_sd) +
                       " system-dependent sources");

  std::string link_error;
  result.program = vm::Program::link(std::move(modules), &link_error);
  if (!result.program.ok()) {
    result.error = "link failed: " + link_error;
    return result;
  }

  // Derived, system-specific image; the tag-relevant specialization
  // points travel in an annotation (§4.3.1: "Image tag includes
  // specialization points to support the coexistence of many builds").
  common::Vfs install;
  Json record = Json::object();
  record["configuration"] = config.get_string("id");
  record["target"] = target.to_string();
  record["system"] = node.name;
  install.write("app/install/config.json", record.dump(2));
  result.image =
      container::ImageBuilder(ir_image)
          .architecture(node.cpu.arch == isa::Arch::X86_64
                            ? container::kArchAmd64
                            : container::kArchArm64)
          .add_layer(std::move(install))
          .annotation(container::kAnnotationKind, "deployed-ir")
          .annotation(container::kAnnotationDeployedConfig,
                      config.get_string("id") + "|" + target.to_string())
          .build();
  result.ok = true;
  return result;
}

}  // namespace xaas
