#include "xaas/ir_deploy.hpp"

#include "common/json.hpp"
#include "common/strings.hpp"
#include "minicc/driver.hpp"

namespace xaas {

using common::Json;

namespace {

std::optional<Json> read_manifest(const common::Vfs& root,
                                  std::string* error) {
  const auto text = root.read("xaas/manifest.json");
  if (!text) {
    if (error) *error = "image has no xaas/manifest.json";
    return std::nullopt;
  }
  try {
    return Json::parse(*text);
  } catch (const common::JsonError& e) {
    if (error) *error = std::string("manifest parse error: ") + e.what();
    return std::nullopt;
  }
}

bool selection_matches(const Json& config,
                       const std::map<std::string, std::string>& selections) {
  const Json* options = config.find("options");
  if (!options) return selections.empty();
  for (const auto& [name, value] : selections) {
    const Json* v = options->find(name);
    if (!v || !v->is_string() || v->as_string() != value) return false;
  }
  return true;
}

/// Arch gate (§5.1 — the IR is not cross-platform): which IR architecture
/// the node consumes.
std::string wanted_ir_architecture(const vm::NodeSpec& node) {
  return node.cpu.arch == isa::Arch::X86_64 ? container::kArchLlvmIrAmd64
                                            : container::kArchLlvmIrArm64;
}

/// Select exactly one configuration from the manifest; on failure returns
/// nullptr with `error` set.
const Json* select_configuration(const Json& manifest,
                                 const std::map<std::string, std::string>&
                                     selections,
                                 std::string* error) {
  const Json* configs = manifest.find("configurations");
  if (!configs || configs->items().empty()) {
    *error = "no configurations in IR image";
    return nullptr;
  }
  std::vector<const Json*> matches;
  for (const auto& c : configs->items()) {
    if (selection_matches(c, selections)) matches.push_back(&c);
  }
  if (matches.empty()) {
    *error = "no configuration matches the selection";
    return nullptr;
  }
  if (matches.size() > 1) {
    *error = "selection is ambiguous: " + std::to_string(matches.size()) +
             " configurations match (specify more points)";
    return nullptr;
  }
  return matches.front();
}

/// Resolve the lowering target: explicit march > configuration tuning >
/// node best — clamped to what the node can actually execute. A recorded
/// tuning beyond the node's ISA ladder silently (but loggedly) degrades;
/// an explicit request beyond it is an error, because the user asked for
/// code the hardware would trap on.
bool resolve_target(const Json& config, const vm::NodeSpec& node,
                    const IrDeployOptions& options, IrDeployPlan* plan) {
  minicc::TargetSpec target;
  target.opt_level = options.opt_level;
  target.openmp = config.get_bool("openmp");
  const isa::VectorIsa node_best = node.best_vector_isa();
  target.visa = node_best;

  const std::string recorded_march = config.get_string("march");
  if (!recorded_march.empty()) {
    if (const auto visa = isa::vector_isa_from_string(recorded_march)) {
      if (isa::runs_on(*visa, node_best)) {
        target.visa = *visa;
      } else {
        // Deploying e.g. AVX-512-tuned IR onto an AVX2 node: honoring the
        // recorded tuning would produce a program that traps at run time,
        // so lower for the node's ladder instead.
        plan->log.push_back("recorded march " + recorded_march +
                            " exceeds node support; clamped to " +
                            std::string(isa::to_string(node_best)));
      }
    }
  }
  if (options.march) {
    if (!isa::runs_on(*options.march, node_best)) {
      plan->error = "requested march " +
                    std::string(isa::to_string(*options.march)) +
                    " is not executable on node " + node.name +
                    " (supports up to " +
                    std::string(isa::to_string(node_best)) + ")";
      return false;
    }
    target.visa = *options.march;
  }
  plan->target = target;
  plan->log.push_back("lowering for " +
                      std::string(isa::to_string(target.visa)));
  return true;
}

/// Shared front half of plan/deploy: arch gate, manifest, selection,
/// target resolution. On success `*config_out` points into `manifest`.
bool resolve_plan(const Json& manifest, const vm::NodeSpec& node,
                  const IrDeployOptions& options, IrDeployPlan* plan,
                  const Json** config_out) {
  std::string error;
  const Json* config = select_configuration(manifest, options.selections,
                                            &error);
  if (!config) {
    plan->error = error;
    return false;
  }
  plan->configuration = config->get_string("id");
  plan->log.push_back("selected configuration " + plan->configuration);
  if (!resolve_target(*config, node, options, plan)) return false;
  if (config_out) *config_out = config;
  plan->ok = true;
  return true;
}

}  // namespace

std::vector<std::string> ir_image_configurations(
    const container::Image& ir_image, std::string* error) {
  std::vector<std::string> ids;
  const common::Vfs root = ir_image.flatten();
  const auto manifest = read_manifest(root, error);
  if (!manifest) return ids;
  const Json* configs = manifest->find("configurations");
  if (!configs) {
    if (error) *error = "manifest has no configurations";
    return ids;
  }
  for (const auto& c : configs->items()) {
    ids.push_back(c.get_string("id"));
  }
  return ids;
}

IrImageManifest read_ir_image_manifest(const container::Image& ir_image) {
  IrImageManifest result;
  result.architecture = ir_image.architecture;
  const common::Vfs root = ir_image.flatten();
  std::string error;
  auto manifest = read_manifest(root, &error);
  if (!manifest) {
    result.error = error;
    return result;
  }
  result.manifest = std::move(*manifest);
  result.ok = true;
  return result;
}

IrDeployPlan plan_ir_deploy(const IrImageManifest& manifest,
                            const vm::NodeSpec& node,
                            const IrDeployOptions& options) {
  IrDeployPlan plan;
  if (!manifest.ok) {
    plan.error = manifest.error;
    return plan;
  }
  const std::string want = wanted_ir_architecture(node);
  if (manifest.architecture != want) {
    plan.error = "IR image architecture " + manifest.architecture +
                 " does not match node (" + want + ")";
    return plan;
  }
  resolve_plan(manifest.manifest, node, options, &plan, nullptr);
  return plan;
}

IrDeployPlan plan_ir_deploy(const container::Image& ir_image,
                            const vm::NodeSpec& node,
                            const IrDeployOptions& options) {
  return plan_ir_deploy(read_ir_image_manifest(ir_image), node, options);
}

DeployedApp deploy_ir_container(const container::Image& ir_image,
                                const vm::NodeSpec& node,
                                const IrDeployOptions& options) {
  DeployedApp result;
  result.node_name = node.name;

  const std::string want = wanted_ir_architecture(node);
  if (ir_image.architecture != want) {
    result.error = "IR image architecture " + ir_image.architecture +
                   " does not match node (" + want + ")";
    return result;
  }

  const common::Vfs root = ir_image.flatten();
  std::string error;
  const auto manifest = read_manifest(root, &error);
  if (!manifest) {
    result.error = error;
    return result;
  }

  IrDeployPlan plan;
  const Json* config_ptr = nullptr;
  if (!resolve_plan(*manifest, node, options, &plan, &config_ptr)) {
    result.error = plan.error;
    return result;
  }
  const Json& config = *config_ptr;
  const minicc::TargetSpec target = plan.target;
  result.target = target;
  result.log = plan.log;

  // Lower IR files / compile system-dependent sources.
  const Json* units = config.find("translation_units");
  if (!units) {
    result.error = "configuration has no translation units";
    return result;
  }
  std::vector<minicc::MachineModule> modules;
  int lowered = 0;
  int compiled_sd = 0;
  for (const auto& unit : units->items()) {
    const std::string source = unit.get_string("source");
    if (unit.get_bool("system_dependent")) {
      // Compile from source now, against the system's own libraries
      // (Definition 2 files, e.g. MPI-ABI-dependent code).
      const auto flag_args = common::split_ws(unit.get_string("flags"));
      minicc::CompileFlags flags = minicc::CompileFlags::parse_args(flag_args);
      flags.opt_level = options.opt_level;
      common::Vfs app_tree;
      for (const auto& [path, contents] : root) {
        if (common::starts_with(path, "app/")) {
          app_tree.write(path.substr(4), contents);
        }
      }
      const auto compiled =
          minicc::compile_to_target(app_tree, source, flags, target);
      if (!compiled.ok) {
        result.error = "system-dependent compile of " + source + " failed: " +
                       compiled.error.message;
        result.log.push_back("build step failed at translation unit " +
                             source + " (" + compiled.error.phase + "): " +
                             compiled.error.message);
        return result;
      }
      modules.push_back(std::move(compiled.machine));
      ++compiled_sd;
      continue;
    }
    const std::string ir_path = unit.get_string("ir");
    const auto ir_text = root.read(ir_path);
    if (!ir_text) {
      result.error = "IR file missing from image: " + ir_path;
      return result;
    }
    auto parsed = minicc::ir::parse_ir(*ir_text);
    if (!parsed.ok) {
      result.error = "IR parse failed for " + ir_path + ": " + parsed.error;
      result.log.push_back("build step failed at translation unit " + source +
                           " (" + ir_path + "): " + parsed.error);
      return result;
    }
    modules.push_back(minicc::lower(std::move(parsed.module), target));
    ++lowered;
  }
  result.log.push_back("lowered " + std::to_string(lowered) +
                       " IR files, compiled " + std::to_string(compiled_sd) +
                       " system-dependent sources");

  std::string link_error;
  result.program = vm::Program::link(std::move(modules), &link_error);
  if (!result.program.ok()) {
    result.error = "link failed: " + link_error;
    result.log.push_back("build step failed at link: " + link_error);
    return result;
  }

  // Derived, system-specific image; the tag-relevant specialization
  // points travel in an annotation (§4.3.1: "Image tag includes
  // specialization points to support the coexistence of many builds").
  // The record deliberately names only (configuration, target), not the
  // node: the image is a function of (IR digest, selection, target), so
  // every node of a homogeneous fleet shares one bit-identical artifact
  // (the specialization-cache contract; the node stays in DeployedApp).
  common::Vfs install;
  Json record = Json::object();
  record["configuration"] = plan.configuration;
  record["target"] = target.to_string();
  install.write("app/install/config.json", record.dump(2));
  result.image =
      container::ImageBuilder(ir_image)
          .architecture(node.cpu.arch == isa::Arch::X86_64
                            ? container::kArchAmd64
                            : container::kArchArm64)
          .add_layer(std::move(install))
          .annotation(container::kAnnotationKind, "deployed-ir")
          .annotation(container::kAnnotationDeployedConfig,
                      plan.configuration + "|" + target.to_string())
          .build();
  result.image_digest = result.image.digest();
  result.ok = true;
  return result;
}

}  // namespace xaas
