#include "xaas/portability.hpp"

namespace xaas {

std::string_view to_string(PortabilityLevel level) {
  switch (level) {
    case PortabilityLevel::Building: return "Building";
    case PortabilityLevel::Linking: return "Linking";
    case PortabilityLevel::Lowering: return "Lowering";
    case PortabilityLevel::Emulation: return "Emulation";
  }
  return "?";
}

const std::vector<PortabilityTechnology>& portability_table() {
  static const std::vector<PortabilityTechnology> rows = {
      {PortabilityLevel::Building, "Spack, EasyBuild",
       "From-source package manager", "Parameterized package compilation",
       "Automatic, dependency resolver"},
      {PortabilityLevel::Linking, "Sarus, Apptainer", "HPC container runtime",
       "Runtime binding, OCI hooks", "Manual, CLI option, and host bind"},
      {PortabilityLevel::Lowering, "Linux Popcorn", "Multi-ISA binary system",
       "Heterogeneous-OS containers", "No direct integration"},
      {PortabilityLevel::Lowering, "H-containers",
       "ISA-agnostic container with IRs", "Container + recompilation",
       "No direct integration"},
      {PortabilityLevel::Lowering, "NVIDIA PTX", "Runtime JIT compilation",
       "Virtual GPU architecture", "No direct integration"},
      {PortabilityLevel::Emulation, "Wi4MPI, mpixlate",
       "MPI compatibility layer", "Runtime emulation of MPI ABIs",
       "No direct integration"},
  };
  return rows;
}

std::string xaas_positioning() {
  return "XaaS source containers move the Building level to deployment "
         "time (one image per toolchain+architecture); XaaS IR containers "
         "operate at the Lowering level with automatic dependency "
         "integration via image layers and deferred vectorization.";
}

}  // namespace xaas
